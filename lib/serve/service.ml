(* The serving core (see service.mli). *)

module Codec = Onll_util.Codec
module Sink = Onll_obs.Sink
module Metrics = Onll_obs.Metrics
module Cs = Onll_specs.Counter

type construction = Plain | Mirrored | Sharded | Batched

let construction_of_string = function
  | "plain" -> Some Plain
  | "mirrored" -> Some Mirrored
  | "sharded" -> Some Sharded
  | "batched" -> Some Batched
  | _ -> None

let construction_name = function
  | Plain -> "plain"
  | Mirrored -> "mirrored"
  | Sharded -> "sharded"
  | Batched -> "batched"

let region_name ~client = Printf.sprintf "%s.srv.c%d" Cs.name client

module Make (M : Onll_machine.Machine_sig.S) = struct
  module Sess = Onll_session.Make (M) (Cs)

  (* {1 The durable object-sequence allocator}

     One Plog region holding high-watermark records: a reserve appends
     the new watermark (one fence) and hands out the [block] identities
     below it from memory. A crash abandons the unused tail of the
     current block — recovery refolds to the durable watermark, so no
     identity is ever handed out twice, which is the whole invariant:
     a reused identity would let [was_linearized] vouch for a dead
     operation and silently lose an update. *)
  module Oseq = struct
    module L = Onll_plog.Plog.Make (M)

    type t = {
      log : L.t;
      block : int;
      mutable next : int;  (* next identity to hand out *)
      mutable limit : int;  (* durable watermark: reserved below this *)
    }

    let refold t =
      let wm =
        List.fold_left
          (fun acc e ->
            match Codec.decode Codec.int e with
            | w -> max acc w
            | exception Codec.Decode_error _ -> acc)
          0 (L.entries t.log)
      in
      t.next <- wm;
      t.limit <- wm

    let create ?(sink = Sink.null) ?(block = 1024) ?(name = "serve.oseq") () =
      if block < 1 then invalid_arg "Oseq.create: block < 1";
      let log = L.create ~sink ~name ~capacity:512 () in
      let t = { log; block; next = 0; limit = 0 } in
      refold t;
      t

    let recover t =
      ignore (L.recover t.log : Onll_plog.Plog.salvage_report);
      refold t

    let reserve t =
      let wm = t.limit + t.block in
      L.append t.log (Codec.encode Codec.int wm);
      (* watermark-first: the new reservation is durable before any old
         record is dropped, so a crash anywhere here refolds to >= the
         ids in use *)
      let n = L.entry_count t.log in
      if n > 1 then begin
        L.set_head t.log (n - 1);
        L.relocate t.log
      end;
      t.limit <- wm

    let next t =
      if t.next >= t.limit then reserve t;
      let v = t.next in
      t.next <- v + 1;
      v

    let watermark t = t.limit
  end

  (* {1 The durable client directory}

     Every client that ever attached, in one Plog region. This is what
     makes {e recovery-complete serving} possible: at startup the service
     resolves every known session's in-doubt operation BEFORE accepting
     any new submission. The order matters for soundness, not just
     latency — [was_linearized]'s checkpoint-floor shortcut vouches for
     any identity below the floor, which is only correct while identities
     below the floor were all actually invoked. At crash time the one
     possibly-uninvoked identity (the session mid-submit) is the highest
     ever drawn, so the salvaged floor cannot have passed it; but letting
     NEW operations run first would checkpoint past it and turn its later
     lazy recovery into a phantom apply — a silently lost update. *)
  module Dir = struct
    module L = Onll_plog.Plog.Make (M)

    type t = { log : L.t; known : (int, unit) Hashtbl.t }

    let capacity ~max_clients = max 1024 (20 * max_clients)

    let create ?(sink = Sink.null) ~max_clients () =
      let log =
        L.create ~sink ~name:"serve.clients"
          ~capacity:(capacity ~max_clients) ()
      in
      ignore (L.recover log : Onll_plog.Plog.salvage_report);
      let known = Hashtbl.create 256 in
      List.iter
        (fun e ->
          match Codec.decode Codec.int e with
          | c -> Hashtbl.replace known c ()
          | exception Codec.Decode_error _ -> ())
        (L.entries log);
      { log; known }

    let clients t =
      List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) t.known [])

    (* One fence per first-ever attach: the membership record must be
       durable before the session's first intent, or a crash in between
       would hide the session from the next startup's recovery sweep. *)
    let add t c =
      if not (Hashtbl.mem t.known c) then begin
        L.append t.log (Codec.encode Codec.int c);
        Hashtbl.replace t.known c ()
      end
  end

  (* {1 The service} *)

  type t = {
    sink : Sink.t;
    token : string;
    max_clients : int;
    max_staleness : int;
    (* E20 tier plumbing (Plain|Mirrored only): submit via the relaxed
       wrapper — [T_strict] pays exactly one piggybacking fence,
       [T_staleness k] is fence-free within the budget — and the flush
       that drains the shared tail at quiesce. *)
    tier_submit : (Protocol.tier -> Cs.update_op -> int) option;
    tier_flush : unit -> unit;
    (* watermark admission for the tiered path — the session applies the
       same policy inside [Sess.submit]; without it the relaxed tiers
       would never shed and overload would surface as deadline blowouts
       instead of definite refusals *)
    mutable tier_submits : int;
    mutable tier_pressure : float;
    proc : int;  (* the machine process every session runs on *)
    scfg : Onll_session.config;
    backend : Sess.backend;  (* shared by every session; b_alloc installed *)
    read0 : unit -> int;
    obj_degraded : unit -> bool;
    alloc : Oseq.t;
    dir : Dir.t;
    sessions : (int, Sess.t) Hashtbl.t;
    regions : (string, int) Hashtbl.t;  (* region name -> owning client *)
    mutable drain_flag : bool;
    (* sticky: any region's fence exhausting its write-back budget marks
       the whole store — the object's own flag only covers the fences the
       object itself attempted *)
    mutable went_degraded : bool;
    mutable rbytes : int;
    g_region_bytes : Metrics.gauge;
    g_sessions : Metrics.gauge;
    m_attach : Metrics.counter;
    m_ok : Metrics.counter;
    m_shed : Metrics.counter;
    m_timeout : Metrics.counter;
    m_degraded : Metrics.counter;
    m_drained : Metrics.counter;
    m_bad_seq : Metrics.counter;
    m_bad_auth : Metrics.counter;
    m_bad_tier : Metrics.counter;
    m_tier_strict : Metrics.counter;
    m_tier_relaxed : Metrics.counter;
    m_adopted : Metrics.counter;
    m_reinvoked : Metrics.counter;
    m_res_refused : Metrics.counter;
    m_unresolved : Metrics.counter;
    m_reads : Metrics.counter;
  }

  let create_service ?session ?(sink = Sink.null) ?(token = "onll")
      ?(max_clients = 10_000) ?(oseq_block = 1024)
      ?(log_capacity = Onll_core.Onll.Config.default.log_capacity)
      ?(max_staleness = 64) construction =
    let replicas = if construction = Mirrored then 2 else 1 in
    let ccfg =
      (* local views (§8, E4): a server applies every client's updates
         from one process, so without them each update replays the whole
         history — O(n²) CPU over a pass. Volatile read acceleration
         only: fence accounting and recovery are unchanged. *)
      {
        Onll_core.Onll.Config.default with
        log_capacity;
        replicas;
        sink;
        local_views = true;
      }
    in
    let alloc = Oseq.create ~sink ~block:oseq_block () in
    Oseq.recover alloc;
    let base_backend, read0, obj_degraded, tier_submit, tier_flush =
      match construction with
      | Plain | Mirrored ->
          let module C = Onll_core.Onll.Make (M) (Cs) in
          let obj = C.make ccfg in
          (* The relaxed wrapper (E20) mediates every update on the
             object — including the exactly-once path below — so the
             acked-but-unfenced staleness tail is always a suffix of the
             linearization. Its recovery subsumes the construction's
             (salvage + drain-record re-apply). *)
          let module R = Onll_relaxed.Make_over (M) (Cs) (C) in
          (* the wrapper draws identities from the same durable
             allocator as the session path — the two update paths share
             the object, so they must share its identity space *)
          let robj =
            R.attach ~max_unfenced_ops:max_staleness
              ~alloc:(fun () -> Oseq.next alloc)
              ccfg obj
          in
          ignore (R.recover_report robj : Onll_core.Onll.Recovery_report.t);
          let module Ov = Sess.Over (C) in
          let base = Ov.backend ~log_capacity obj in
          ( {
              base with
              Sess.b_update_detectable =
                (fun ~seq op ->
                  (* an exactly-once update fences its own fuzzy window,
                     which skips the acked-available tail; earlier
                     staleness acks must go durable first or a crash
                     would lose an interior operation. Free (no fence)
                     when the tail is empty — the all-exactly-once
                     steady state. *)
                  R.flush robj;
                  C.update_detectable obj ~seq op);
            },
            (fun () -> C.read obj Cs.Get),
            (fun () -> C.degraded obj),
            Some
              (fun tier op ->
                match (tier : Protocol.tier) with
                | Protocol.T_strict -> snd (R.update_strict robj op)
                | Protocol.T_staleness k -> snd (R.update ~budget:k robj op)
                | Protocol.T_exactly_once -> assert false),
            fun () -> R.flush robj )
      | Batched ->
          let module C = Onll_batched.Make (M) (Cs) in
          let obj = C.make ccfg in
          ignore (C.recover_report obj : Onll_core.Onll.Recovery_report.t);
          let module Ov = Sess.Over (C) in
          ( Ov.backend ~log_capacity obj,
            (fun () -> C.read obj Cs.Get),
            (fun () -> C.degraded obj),
            None,
            fun () -> () )
      | Sharded ->
          let module C = Onll_sharded.Make (M) (Cs) in
          let obj = C.make ~shards:4 ccfg in
          ignore (C.recover_report obj : Onll_core.Onll.Recovery_report.t);
          let capf = float_of_int (max log_capacity 1) in
          ( {
              Sess.b_update_detectable =
                (fun ~seq op -> C.update_detectable obj ~seq op);
              b_was_linearized = (fun op id -> C.was_linearized obj op id);
              b_read = (fun r -> C.read obj r);
              b_degraded = (fun () -> C.degraded obj);
              b_pressure =
                (fun () ->
                  let snap = C.snapshot obj in
                  List.fold_left
                    (fun acc (l : Onll_core.Onll.Snapshot.log) ->
                      Float.max acc (float_of_int l.live_bytes /. capf))
                    0. snap.Onll_core.Onll.Snapshot.logs);
              b_alloc = None;
            },
            (fun () -> C.read obj Cs.Get),
            (fun () -> C.degraded obj),
            None,
            fun () -> () )
    in
    let dir = Dir.create ~sink ~max_clients () in
    let backend =
      { base_backend with Sess.b_alloc = Some (fun () -> Oseq.next alloc) }
    in
    let scfg =
      match session with
      | Some c -> c
      | None -> { Onll_session.default_config with replicas }
    in
    let reg = Sink.registry sink in
    {
      sink;
      token;
      max_clients;
      max_staleness;
      tier_submit;
      tier_flush;
      tier_submits = 0;
      tier_pressure = 0.;
      proc = M.self ();
      scfg;
      backend;
      read0;
      obj_degraded;
      alloc;
      dir;
      sessions = Hashtbl.create 256;
      regions = Hashtbl.create 256;
      drain_flag = false;
      went_degraded = false;
      (* the allocator region (512 bytes, Oseq.create) + the directory *)
      rbytes = 512 + Dir.capacity ~max_clients;
      g_region_bytes = Metrics.gauge reg "serve.region_bytes";
      g_sessions = Metrics.gauge reg "serve.sessions";
      m_attach = Metrics.counter reg "serve.attach";
      m_ok = Metrics.counter reg "serve.submit.ok";
      m_shed = Metrics.counter reg "serve.refused.overloaded";
      m_timeout = Metrics.counter reg "serve.refused.timeout";
      m_degraded = Metrics.counter reg "serve.refused.degraded";
      m_drained = Metrics.counter reg "serve.refused.draining";
      m_bad_seq = Metrics.counter reg "serve.refused.bad_seq";
      m_bad_auth = Metrics.counter reg "serve.refused.auth";
      m_bad_tier = Metrics.counter reg "serve.refused.bad_tier";
      m_tier_strict = Metrics.counter reg "serve.submit.strict";
      m_tier_relaxed = Metrics.counter reg "serve.submit.relaxed";
      m_adopted = Metrics.counter reg "serve.resolved.adopted";
      m_reinvoked = Metrics.counter reg "serve.resolved.reinvoked";
      m_res_refused = Metrics.counter reg "serve.resolved.refused";
      m_unresolved = Metrics.counter reg "serve.resolved.unresolved";
      m_reads = Metrics.counter reg "serve.reads";
    }

  (* One session region per client, named injectively; the collision
     table turns any future naming regression into a loud failure rather
     than two clients silently sharing a durable log. *)
  let attach_session t client =
    match Hashtbl.find_opt t.sessions client with
    | Some s -> (s, false)
    | None ->
        let name = region_name ~client in
        (match Hashtbl.find_opt t.regions name with
        | Some owner when owner <> client ->
            failwith
              (Printf.sprintf
                 "Service: region %S claimed by clients %d and %d" name owner
                 client)
        | _ -> Hashtbl.replace t.regions name client);
        Dir.add t.dir client;
        let sess =
          Sess.attach ~config:t.scfg ~sink:t.sink ~name ~proc:t.proc ~client
            t.backend
        in
        Hashtbl.replace t.sessions client sess;
        t.rbytes <- t.rbytes + (t.scfg.log_capacity * t.scfg.replicas);
        if Sink.active t.sink then begin
          Metrics.set t.g_region_bytes (float_of_int t.rbytes);
          Metrics.set t.g_sessions (float_of_int (Hashtbl.length t.sessions));
          Metrics.incr t.m_attach
        end;
        (sess, true)

  let wire_of_resolution t = function
    | Sess.No_pending -> Protocol.W_none
    | Sess.Was_applied id ->
        Metrics.incr t.m_adopted;
        Protocol.W_applied id.Onll_core.Onll.id_seq
    | Sess.Reinvoked (old_id, fresh, v) ->
        Metrics.incr t.m_reinvoked;
        Protocol.W_reinvoked
          (old_id.Onll_core.Onll.id_seq, fresh.Onll_core.Onll.id_seq, v)
    | Sess.Refused id ->
        Metrics.incr t.m_res_refused;
        Protocol.W_refused id.Onll_core.Onll.id_seq
    | Sess.Unresolved (id, _) ->
        Metrics.incr t.m_unresolved;
        Protocol.W_unresolved id.Onll_core.Onll.id_seq

  (* Resolve the session's in-doubt operation, degraded-safe: a sticky
     fail-stop store surfacing mid-resolution leaves the op pending and
     reports it unresolved — never a connection reset, never an ack. *)
  let resolve t sess =
    match Sess.recover sess with
    | r -> wire_of_resolution t r
    | exception Onll_nvm.File_memory.Degraded _ -> (
        t.went_degraded <- true;
        Metrics.incr t.m_unresolved;
        match Sess.pending sess with
        | Some (id, _) -> Protocol.W_unresolved id.Onll_core.Onll.id_seq
        | None -> Protocol.W_none)

  (* Recovery-complete serving: every session the directory knows is
     attached and its in-doubt operation resolved before the first
     request — see the {!Dir} comment for why lazy per-Hello recovery
     would be unsound, not merely slow. *)
  let make ?session ?sink ?token ?max_clients ?oseq_block ?log_capacity
      ?max_staleness construction =
    let t =
      create_service ?session ?sink ?token ?max_clients ?oseq_block
        ?log_capacity ?max_staleness construction
    in
    List.iter
      (fun client ->
        let sess, _ = attach_session t client in
        ignore (resolve t sess : Protocol.wire_resolution))
      (Dir.clients t.dir);
    t

  type conn = { mutable auth : Sess.t option; mutable tier : Protocol.tier }

  let conn () = { auth = None; tier = Protocol.T_exactly_once }

  let tier_ok t = function
    | Protocol.T_exactly_once -> true
    | Protocol.T_strict -> t.tier_submit <> None
    | Protocol.T_staleness k ->
        t.tier_submit <> None && k >= 1 && k <= t.max_staleness

  let hello t conn ~client ~token ~tier =
    if t.drain_flag then begin
      Metrics.incr t.m_drained;
      Protocol.Refused Protocol.R_draining
    end
    else if not (String.equal token t.token) then begin
      Metrics.incr t.m_bad_auth;
      Protocol.Refused Protocol.R_bad_token
    end
    else if client < 0 || client >= t.max_clients then begin
      Metrics.incr t.m_bad_auth;
      Protocol.Refused Protocol.R_bad_client
    end
    else if not (tier_ok t tier) then begin
      (* definite, pre-durable: relaxed tiers need the wrapper (plain or
         mirrored construction) and a staleness bound within the
         server's risk cap *)
      Metrics.incr t.m_bad_tier;
      Protocol.Refused Protocol.R_bad_tier
    end
    else begin
      (* the first-ever attach fences (directory membership), so a sticky
         degraded store can surface right here — a protocol error, never
         a crash: nothing was attached, nothing durable happened *)
      match attach_session t client with
      | exception Onll_nvm.File_memory.Degraded _ ->
          t.went_degraded <- true;
          Metrics.incr t.m_degraded;
          Protocol.Refused Protocol.R_degraded
      | sess, fresh ->
          conn.auth <- Some sess;
          conn.tier <- tier;
          (* A fresh attach always runs recovery (the region may hold an
             interrupted pre-restart session); a re-attach on a live
             server only needs it when an op is actually in doubt. *)
          let resolution =
            if fresh || Sess.pending sess <> None then resolve t sess
            else Protocol.W_none
          in
          Protocol.Attached
            {
              next_seq = Sess.next_seq sess;
              acked = Sess.acked_below sess;
              resolution;
            }
    end

  (* Relaxed tiers (E20): no session dedup, no intent record — the ack
     path is the wrapper's, priced exactly one fence (strict) or 1/k
     (staleness). [seq] is echoed, not checked: retrying an
     indeterminate submit may double-apply; that is the tier's stated
     trade. *)
  let tier_overloaded t =
    t.tier_submits <- t.tier_submits + 1;
    if t.tier_submits mod max t.scfg.check_pressure_every 1 = 0 then
      t.tier_pressure <- t.backend.Sess.b_pressure ();
    t.scfg.high_watermark < 1.0
    && t.tier_pressure >= t.scfg.high_watermark

  let submit_tiered t ~seq ~op tier =
    if tier_overloaded t then begin
      Metrics.incr t.m_shed;
      Protocol.Refused Protocol.R_overloaded
    end
    else
    match Codec.decode Cs.update_codec op with
    | exception Codec.Decode_error _ -> Protocol.Refused Protocol.R_bad_op
    | uop -> (
        match (Option.get t.tier_submit) tier uop with
        | v ->
            Metrics.incr t.m_ok;
            Metrics.incr
              (if tier = Protocol.T_strict then t.m_tier_strict
               else t.m_tier_relaxed);
            Protocol.Acked { seq; value = v }
        | exception Onll_nvm.File_memory.Degraded _ ->
            t.went_degraded <- true;
            Metrics.incr t.m_degraded;
            Protocol.Refused Protocol.R_degraded
        | exception Onll_nvm.Memory.Transient_fault _ ->
            Metrics.incr t.m_timeout;
            Protocol.Refused Protocol.R_timeout)

  let submit t conn ~seq ~op =
    match conn.auth with
    | None -> Protocol.Refused Protocol.R_not_attached
    | Some sess ->
        if t.drain_flag then begin
          Metrics.incr t.m_drained;
          Protocol.Refused Protocol.R_draining
        end
        else if conn.tier <> Protocol.T_exactly_once then
          submit_tiered t ~seq ~op conn.tier
        else if Sess.pending sess <> None then begin
          (* an unresolved in-doubt op blocks new work; the client should
             have resolved it via Hello — refuse rather than guess *)
          Metrics.incr t.m_timeout;
          Protocol.Refused Protocol.R_timeout
        end
        else if seq <> Sess.next_seq sess then begin
          Metrics.incr t.m_bad_seq;
          Protocol.Refused (Protocol.R_bad_seq (Sess.next_seq sess))
        end
        else begin
          match Codec.decode Cs.update_codec op with
          | exception Codec.Decode_error _ ->
              Protocol.Refused Protocol.R_bad_op
          | uop -> (
              match Sess.submit sess uop with
              | Ok v ->
                  Metrics.incr t.m_ok;
                  Protocol.Acked { seq; value = v }
              | Error Onll_session.Overloaded ->
                  Metrics.incr t.m_shed;
                  Protocol.Refused Protocol.R_overloaded
              | Error Onll_session.Timeout ->
                  Metrics.incr t.m_timeout;
                  Protocol.Refused Protocol.R_timeout
              | Error Onll_session.Degraded ->
                  t.went_degraded <- true;
                  Metrics.incr t.m_degraded;
                  Protocol.Refused Protocol.R_degraded
              | exception Onll_nvm.File_memory.Degraded _ ->
                  t.went_degraded <- true;
                  Metrics.incr t.m_degraded;
                  Protocol.Refused Protocol.R_degraded
              | exception Onll_nvm.Memory.Transient_fault _ ->
                  (* a transient escaped outside the session's own retry
                     (e.g. the identity allocator's fence): nothing
                     durable happened, refuse indeterminate *)
                  Metrics.incr t.m_timeout;
                  Protocol.Refused Protocol.R_timeout)
        end

  let fetch t conn =
    match conn.auth with
    | None -> Protocol.Refused Protocol.R_not_attached
    | Some sess ->
        Metrics.incr t.m_reads;
        Protocol.Got (Sess.read sess Cs.Get)

  let handle t conn (req : Protocol.req) : Protocol.resp =
    match req with
    | Protocol.Hello { client; token; tier } ->
        hello t conn ~client ~token ~tier
    | Protocol.Submit { seq; deadline_ns = _; op } -> submit t conn ~seq ~op
    | Protocol.Fetch _ -> fetch t conn
    | Protocol.Ping -> Protocol.Pong
    | Protocol.Bye ->
        conn.auth <- None;
        Protocol.Gone

  let drain t = t.drain_flag <- true
  let draining t = t.drain_flag
  (* A degraded store cannot fence — and needs no final one: nothing was
     acked past the failed fence that made it sticky. A healthy one
     first drains the staleness tail: an orderly shutdown loses no
     acked operation, whatever its tier. *)
  let quiesce t =
    try
      t.tier_flush ();
      M.fence ()
    with Onll_nvm.File_memory.Degraded _ -> ()
  let counter_value t = t.read0 ()
  let sessions t = Hashtbl.length t.sessions
  let region_bytes t = t.rbytes
  let degraded t = t.went_degraded || t.obj_degraded ()
end
