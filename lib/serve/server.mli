(** The socket shell of `onll serve`: a single-threaded poll(2) event
    loop over a Unix-domain socket, speaking {!Protocol} frames into
    {!Service.Make.handle}.

    The shell owns everything the service core is pure of: accepting,
    nonblocking reads/writes, per-connection buffers, wall-clock deadline
    enforcement (a {!Protocol.req.Submit} whose deadline has already
    passed is refused {e before} any durable work), idle-connection
    reaping, and graceful drain — on SIGTERM (or {!request_drain}) the
    listener closes, buffered in-flight requests are answered (completed
    if already durable, refused with {!Protocol.refusal.R_draining}
    otherwise), every response buffer is flushed, a final fence runs, and
    {!Make.run} returns. Nothing is ever acknowledged after a refused
    fence: the final fence is the last durable action before exit. *)

val request_drain : unit -> unit
(** Signal-handler-safe: ask the running server to drain. {!Make.run}
    installs it as the [SIGTERM] handler for the duration of the run. *)

type config = {
  socket_path : string;
  idle_timeout_ms : int;  (** reap connections idle this long; 0 = never *)
  max_conns : int;  (** beyond this, accepted connections close at once *)
  drain_grace_ms : int;
      (** max time to flush responses after drain before hard-closing *)
  on_ready : unit -> unit;
      (** called once listening (harnesses print a READY line) *)
}

val default_config : socket_path:string -> config
(** 30 s idle timeout, 12_000 connections, 2 s drain grace, no-op
    [on_ready]. *)

module Make (M : Onll_machine.Machine_sig.S) : sig
  module Svc : module type of Service.Make (M)

  val run : Svc.t -> config -> unit
  (** Serve until drained. Binds (replacing any stale file at)
      [socket_path], accepts, and loops. Returns after a completed
      drain; the socket file is removed. *)
end
