(** The `onll serve` wire protocol: length-prefixed binary frames.

    Every message is a 4-byte big-endian payload length followed by a
    {!Onll_util.Codec}-encoded payload. The protocol carries exactly what
    the durable-session contract needs at a network boundary: the client
    id and a token ({!req.Hello}), the client's intent sequence number and
    a deadline ({!req.Submit}), and — the crash half — a reattach response
    ({!resp.Attached}) that tells the returning client its durable cursors
    {e and} the fate of its one in-doubt operation, so a client that
    disconnected mid-operation (or outlived a server crash) can resolve it
    without ever re-submitting blindly.

    The client-side resolution rule, given [Attached { next_seq; resolution; _ }]
    and an outstanding operation at sequence [s]. A non-[W_none]
    resolution is always about the session's {e last durable intent},
    session sequence [next_seq - 1] (the payloads carry object sequences,
    which the client never sees otherwise); recovery may re-report an op
    that was applied but not yet durably acknowledged, so a resolution
    only binds the client's op when [s = next_seq - 1]:
    {ul
    {- [s = next_seq - 1] and [resolution] is not [W_none] — trust it
       (adopted / re-invoked / refused / still unresolved);}
    {- otherwise, [s < next_seq] — the operation was applied and
       acknowledged durably; the protocol acknowledgement was what got
       lost. Confirm it, do not resubmit;}
    {- otherwise [s >= next_seq] — the intent never became durable;
       resubmit under [next_seq].}} *)

(** The durability tier a session asks for at [Hello] (E20). The server
    refuses combinations it cannot honour with {!refusal.R_bad_tier}. *)
type tier =
  | T_exactly_once
      (** the default: exactly-once durable acks through the session
          machinery (intent record + Theorem 5.1 fence) *)
  | T_strict
      (** classic durable linearizability, no dedup: exactly one fence
          per update ({!Onll_relaxed}'s piggybacking strict path — it
          also drains any staleness tail ahead of it) *)
  | T_staleness of int
      (** bounded staleness k: fence-free acks into the shared risk
          budget; a crash may cost at most the k-deep acked suffix,
          named in the recovery ledger — never an interior op *)

val tier_name : tier -> string
val tier_of_string : string -> tier option
(** ["exactly-once"]/["eo"], ["strict"], ["stale:<k>"]/["staleness:<k>"]. *)

(** Client → server. *)
type req =
  | Hello of { client : int; token : string; tier : tier }
      (** Authenticate and attach (or re-attach) the client's durable
          session at [tier]. Answered by {!resp.Attached} or a refusal. *)
  | Submit of { seq : int; deadline_ns : int; op : string }
      (** One exactly-once update: [seq] must equal the session's next
          sequence number (stale or future values are refused with
          {!refusal.R_bad_seq} carrying the expected one). [deadline_ns]
          is an absolute [CLOCK_MONOTONIC] deadline stamped by the client
          ([0] = none); the server sheds the request without durable work
          once it has passed. [op] is the {!Onll_specs.Counter} update,
          encoded. *)
  | Fetch of { op : string }  (** fence-free read; never refused *)
  | Ping  (** liveness/idle keep-alive *)
  | Bye  (** orderly goodbye; the server replies {!resp.Gone} and closes *)

(** Why a request was refused. Every refusal is {e definite} about
    durable state except [R_timeout], which is the session contract's
    indeterminate case — the client resolves it by re-attaching. *)
type refusal =
  | R_overloaded  (** watermark admission shed it before any durable work *)
  | R_timeout
      (** deadline passed (before work: definite) or the durable path
          timed out (indeterminate: reattach to resolve) *)
  | R_degraded  (** sticky degraded policy refuses writes *)
  | R_draining  (** server is draining (SIGTERM); reconnect elsewhere *)
  | R_bad_seq of int  (** wrong intent seq; payload = expected next seq *)
  | R_bad_token
  | R_bad_client  (** client id out of the served range *)
  | R_not_attached  (** Submit/Fetch before Hello *)
  | R_bad_op  (** undecodable operation payload *)
  | R_bad_tier
      (** tier the server cannot honour: relaxed tiers on a sharded or
          batched construction, or a staleness bound out of range *)

(** The in-doubt resolution carried on {!resp.Attached}, mirroring
    {!Onll_session.Make.resolution} with object-sequence payloads. *)
type wire_resolution =
  | W_none
  | W_applied of int  (** in-doubt op (object seq) is in the history *)
  | W_reinvoked of int * int * int
      (** (old object seq, fresh object seq, value) *)
  | W_refused of int  (** degradation policy withheld re-invocation *)
  | W_unresolved of int  (** still in doubt (faults raging); retry Hello *)

(** Server → client. *)
type resp =
  | Attached of { next_seq : int; acked : int; resolution : wire_resolution }
  | Acked of { seq : int; value : int }  (** durably applied; the ack *)
  | Refused of refusal
  | Got of int  (** read result *)
  | Pong
  | Gone

val pp_refusal : Format.formatter -> refusal -> unit

val req_codec : req Onll_util.Codec.t
val resp_codec : resp Onll_util.Codec.t

(** {1 Framing} *)

val max_frame : int
(** Upper bound on a payload (64 KiB) — a length prefix beyond it is a
    protocol error, not an allocation request. *)

val write_frame : Buffer.t -> 'a Onll_util.Codec.t -> 'a -> unit
(** Append one frame (length prefix + payload) to an output buffer. *)

(** Per-connection incremental input buffer: feed raw bytes as they
    arrive, pop complete frames as they close. *)
module Inbuf : sig
  type t

  exception Oversized_frame

  val create : unit -> t
  val add : t -> bytes -> int -> unit  (** append the first [n] bytes *)

  val pop : t -> 'a Onll_util.Codec.t -> 'a option
  (** The next complete frame, decoded, or [None] if more bytes are
      needed. @raise Oversized_frame on a length prefix over {!max_frame}
      (the connection should be dropped).
      @raise Onll_util.Codec.Decode_error on a malformed payload. *)

  val pending : t -> int  (** buffered bytes not yet popped *)
end
