(* poll(2) wrapper (see netpoll.mli). *)

let pollin = 1
let pollout = 2
let pollerr = 4

external poll_raw : int array -> int array -> int array -> int -> int -> int
  = "onll_poll"

external fd_int : Unix.file_descr -> int = "%identity"
external int_fd : int -> Unix.file_descr = "%identity"

type t = {
  mutable fds : int array;
  mutable events : int array;
  mutable revents : int array;
  mutable n : int;
}

let create ?(initial = 64) () =
  let initial = max initial 1 in
  {
    fds = Array.make initial 0;
    events = Array.make initial 0;
    revents = Array.make initial 0;
    n = 0;
  }

let clear t = t.n <- 0

let grow t =
  let cap = Array.length t.fds * 2 in
  let copy a = Array.append a (Array.make (cap - Array.length a) 0) in
  t.fds <- copy t.fds;
  t.events <- copy t.events;
  t.revents <- copy t.revents

let add t fd interest =
  if t.n = Array.length t.fds then grow t;
  t.fds.(t.n) <- fd_int fd;
  t.events.(t.n) <- interest;
  t.revents.(t.n) <- 0;
  t.n <- t.n + 1

let wait t ~timeout_ms = poll_raw t.fds t.events t.revents t.n timeout_ms

let ready t f =
  for i = 0 to t.n - 1 do
    if t.revents.(i) <> 0 then f (int_fd t.fds.(i)) t.revents.(i)
  done
