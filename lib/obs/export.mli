(** Snapshot exporters: serialise a {!Metrics.t} registry.

    The JSON form is the repository's canonical metrics snapshot — the
    benchmark harness writes one [BENCH_<experiment>.json] per run and
    [onll stats] prints one to stdout:

    {v
    {
      "meta": { "experiment": "e1", ... },
      "metrics": {
        "fences.update": 300,
        "fences.read": 0,
        "fuzzy.window": { "count": 300, "sum": 312, "min": 1, "max": 3,
                          "mean": 1.04 }
      }
    }
    v}

    Counters export as integers, gauges as numbers, histograms as
    [{count, sum, min, max, mean}] objects. The CSV form flattens
    histograms into [name.count], [name.sum], … rows and renders [meta]
    as [# key=value] comment lines. *)

val json : ?meta:(string * string) list -> Metrics.t -> string
val csv : ?meta:(string * string) list -> Metrics.t -> string

val write_file : path:string -> string -> unit
(** Write [contents] to [path], truncating. *)

val read_scalars : path:string -> (string * float) list
(** Load the scalar metrics of a snapshot previously written by {!json}
    (counters and gauges; histogram-valued entries are skipped), in file
    order. A loader for {e this exporter's own output} — the bench
    regression gate round-trips committed [BENCH_*.json] snapshots through
    it — not a general JSON parser: it reads the exporter's fixed
    one-["name": value]-per-line layout.
    @raise Sys_error if the file cannot be read.
    @raise Failure on a line that is not in the exporter's layout. *)
