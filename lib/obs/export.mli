(** Snapshot exporters: serialise a {!Metrics.t} registry.

    The JSON form is the repository's canonical metrics snapshot — the
    benchmark harness writes one [BENCH_<experiment>.json] per run and
    [onll stats] prints one to stdout:

    {v
    {
      "meta": { "experiment": "e1", ... },
      "metrics": {
        "fences.update": 300,
        "fences.read": 0,
        "fuzzy.window": { "count": 300, "sum": 312, "min": 1, "max": 3,
                          "mean": 1.04 }
      }
    }
    v}

    Counters export as integers, gauges as numbers, histograms as
    [{count, sum, min, max, mean}] objects. The CSV form flattens
    histograms into [name.count], [name.sum], … rows and renders [meta]
    as [# key=value] comment lines. *)

val json : ?meta:(string * string) list -> Metrics.t -> string
val csv : ?meta:(string * string) list -> Metrics.t -> string

val write_file : path:string -> string -> unit
(** Write [contents] to [path], truncating. *)
