(** Event sinks (see sink.mli). *)

type t = {
  s_active : bool;
  mutable clock : int;
  s_registry : Metrics.t;
  handler : (Event.t -> unit) option;
  (* Event-derived counters, resolved once at sink construction so [emit]
     performs no name lookups. *)
  c_fences : Metrics.counter;
  c_pfences : Metrics.counter;
  c_flushes : Metrics.counter;
  c_flush_lines : Metrics.counter;
  c_cas_retries : Metrics.counter;
  c_help_events : Metrics.counter;
  c_help_ops : Metrics.counter;
  c_checkpoints : Metrics.counter;
  c_recoveries : Metrics.counter;
  c_recovered_ops : Metrics.counter;
  c_crashes : Metrics.counter;
  c_log_appends : Metrics.counter;
  c_log_bytes : Metrics.counter;
  c_log_compactions : Metrics.counter;
  c_log_dropped : Metrics.counter;
  c_faults : Metrics.counter;
  c_retries : Metrics.counter;
  c_salvages : Metrics.counter;
  c_salvage_quarantined : Metrics.counter;
  c_salvage_bytes_lost : Metrics.counter;
  c_recovery_interruptions : Metrics.counter;
  c_repairs : Metrics.counter;
  c_repair_entries : Metrics.counter;
  c_repair_bytes : Metrics.counter;
  c_scrubs : Metrics.counter;
  c_scrub_entries : Metrics.counter;
  c_scrub_repaired : Metrics.counter;
  c_scrub_unrepairable : Metrics.counter;
  c_routes : Metrics.counter;
  c_routes_global : Metrics.counter;
  c_session_ops : Metrics.counter;
  c_session_ok : Metrics.counter;
  c_session_timeouts : Metrics.counter;
  c_session_sheds : Metrics.counter;
  c_session_refused : Metrics.counter;
  c_session_applied : Metrics.counter;
  c_session_reinvoked : Metrics.counter;
  c_txns : Metrics.counter;
  c_txn_subops : Metrics.counter;
}

let build ~active ~registry ~handler =
  {
    s_active = active;
    clock = 0;
    s_registry = registry;
    handler;
    c_fences = Metrics.counter registry "fences.total";
    c_pfences = Metrics.counter registry "fences.persistent";
    c_flushes = Metrics.counter registry "flushes";
    c_flush_lines = Metrics.counter registry "flushes.lines";
    c_cas_retries = Metrics.counter registry "cas.retries";
    c_help_events = Metrics.counter registry "help.events";
    c_help_ops = Metrics.counter registry "help.ops";
    c_checkpoints = Metrics.counter registry "checkpoints";
    c_recoveries = Metrics.counter registry "recoveries";
    c_recovered_ops = Metrics.counter registry "recovery.ops";
    c_crashes = Metrics.counter registry "crashes";
    c_log_appends = Metrics.counter registry "log.appends";
    c_log_bytes = Metrics.counter registry "log.bytes";
    c_log_compactions = Metrics.counter registry "log.compactions";
    c_log_dropped = Metrics.counter registry "log.dropped_entries";
    c_faults = Metrics.counter registry "faults.injected";
    c_retries = Metrics.counter registry "retries";
    c_salvages = Metrics.counter registry "salvages";
    c_salvage_quarantined = Metrics.counter registry "salvage.quarantined";
    c_salvage_bytes_lost = Metrics.counter registry "salvage.bytes_lost";
    c_recovery_interruptions =
      Metrics.counter registry "recovery.interruptions";
    c_repairs = Metrics.counter registry "repairs";
    c_repair_entries = Metrics.counter registry "repair.entries";
    c_repair_bytes = Metrics.counter registry "repair.bytes";
    c_scrubs = Metrics.counter registry "scrubs";
    c_scrub_entries = Metrics.counter registry "scrub.entries";
    c_scrub_repaired = Metrics.counter registry "scrub.repaired";
    c_scrub_unrepairable = Metrics.counter registry "scrub.unrepairable";
    c_routes = Metrics.counter registry "routes";
    c_routes_global = Metrics.counter registry "routes.global";
    c_session_ops = Metrics.counter registry "session.ops";
    c_session_ok = Metrics.counter registry "session.ok";
    c_session_timeouts = Metrics.counter registry "session.timeouts";
    c_session_sheds = Metrics.counter registry "session.sheds";
    c_session_refused = Metrics.counter registry "session.refused";
    c_session_applied = Metrics.counter registry "session.resolved.applied";
    c_session_reinvoked =
      Metrics.counter registry "session.resolved.reinvoked";
    c_txns = Metrics.counter registry "txns";
    c_txn_subops = Metrics.counter registry "txn.subops";
  }

let make ?registry ?handler () =
  let registry =
    match registry with Some r -> r | None -> Metrics.create ()
  in
  build ~active:true ~registry ~handler

let null = build ~active:false ~registry:(Metrics.create ()) ~handler:None

let active t = t.s_active
let registry t = t.s_registry
let now t = t.clock

let emit t ~proc kind =
  if t.s_active then begin
    let time = t.clock in
    t.clock <- time + 1;
    (match kind with
    | Event.Fence { persistent } ->
        Metrics.incr t.c_fences;
        if persistent then Metrics.incr t.c_pfences
    | Event.Flush { lines } ->
        Metrics.incr t.c_flushes;
        Metrics.add t.c_flush_lines lines
    | Event.Cas_retry _ -> Metrics.incr t.c_cas_retries
    | Event.Help { helped } ->
        Metrics.incr t.c_help_events;
        Metrics.add t.c_help_ops helped
    | Event.Checkpoint _ -> Metrics.incr t.c_checkpoints
    | Event.Recovery { ops } ->
        Metrics.incr t.c_recoveries;
        Metrics.add t.c_recovered_ops ops
    | Event.Crash -> Metrics.incr t.c_crashes
    | Event.Log_append { bytes; _ } ->
        Metrics.incr t.c_log_appends;
        Metrics.add t.c_log_bytes bytes
    | Event.Log_compact { dropped; _ } ->
        Metrics.incr t.c_log_compactions;
        Metrics.add t.c_log_dropped dropped
    | Event.Fault_injected _ -> Metrics.incr t.c_faults
    | Event.Retry _ -> Metrics.incr t.c_retries
    | Event.Salvage { quarantined; bytes_lost; _ } ->
        Metrics.incr t.c_salvages;
        Metrics.add t.c_salvage_quarantined quarantined;
        Metrics.add t.c_salvage_bytes_lost bytes_lost
    | Event.Recovery_interrupted _ ->
        Metrics.incr t.c_recovery_interruptions
    | Event.Repair { entries; bytes; _ } ->
        Metrics.incr t.c_repairs;
        Metrics.add t.c_repair_entries entries;
        Metrics.add t.c_repair_bytes bytes
    | Event.Scrub { entries; repaired; unrepairable; _ } ->
        Metrics.incr t.c_scrubs;
        Metrics.add t.c_scrub_entries entries;
        Metrics.add t.c_scrub_repaired repaired;
        Metrics.add t.c_scrub_unrepairable unrepairable
    | Event.Route { global; _ } ->
        Metrics.incr t.c_routes;
        if global then Metrics.incr t.c_routes_global
    | Event.Session { outcome; _ } -> (
        Metrics.incr t.c_session_ops;
        match outcome with
        | Event.Sess_ok -> Metrics.incr t.c_session_ok
        | Event.Sess_timeout -> Metrics.incr t.c_session_timeouts
        | Event.Sess_shed -> Metrics.incr t.c_session_sheds
        | Event.Sess_refused -> Metrics.incr t.c_session_refused
        | Event.Sess_applied -> Metrics.incr t.c_session_applied
        | Event.Sess_reinvoked -> Metrics.incr t.c_session_reinvoked)
    | Event.Txn { ops; _ } ->
        Metrics.incr t.c_txns;
        Metrics.add t.c_txn_subops ops);
    match t.handler with
    | Some f -> f { Event.time; proc; kind }
    | None -> ()
  end

let recording ?registry () =
  let events = ref [] in
  let t = make ?registry ~handler:(fun e -> events := e :: !events) () in
  (t, fun () -> List.rev !events)
