(** Registry exporters (see export.mli). *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* %.17g round-trips every float; strip a trailing "." OCaml never emits
   but be defensive about "inf"/"nan" (not valid JSON). *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null"

let add_value b = function
  | Metrics.Int n -> Buffer.add_string b (string_of_int n)
  | Metrics.Float f -> Buffer.add_string b (json_float f)
  | Metrics.Summary s ->
      Buffer.add_string b
        (Printf.sprintf
           "{ \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \
            \"mean\": %s }"
           s.Metrics.hs_count s.hs_sum s.hs_min s.hs_max
           (json_float s.hs_mean))

let json ?(meta = []) registry =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"meta\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      buf_add_json_string b k;
      Buffer.add_string b ": ";
      buf_add_json_string b v)
    meta;
  if meta <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "},\n  \"metrics\": {";
  let metrics = Metrics.dump registry in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      buf_add_json_string b name;
      Buffer.add_string b ": ";
      add_value b v)
    metrics;
  if metrics <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "}\n}\n";
  Buffer.contents b

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let csv ?(meta = []) registry =
  let b = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "# %s=%s\n" k v))
    meta;
  Buffer.add_string b "metric,value\n";
  let row name v =
    Buffer.add_string b (Printf.sprintf "%s,%s\n" (csv_cell name) v)
  in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Int n -> row name (string_of_int n)
      | Metrics.Float f -> row name (csv_float f)
      | Metrics.Summary s ->
          row (name ^ ".count") (string_of_int s.Metrics.hs_count);
          row (name ^ ".sum") (string_of_int s.hs_sum);
          row (name ^ ".min") (string_of_int s.hs_min);
          row (name ^ ".max") (string_of_int s.hs_max);
          row (name ^ ".mean") (csv_float s.hs_mean))
    (Metrics.dump registry);
  Buffer.contents b

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Loader for [json]'s own fixed layout: inside the "metrics" object every
   scalar is one line, [    "name": value,?]. Histogram values open a
   ["{"] on the same line and are skipped. *)
let read_scalars ~path =
  let ic = open_in path in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> ());
  let metrics = ref [] in
  let in_metrics = ref false in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "\"metrics\": {" then in_metrics := true
      else if !in_metrics && (line = "}" || line = "},") then
        in_metrics := false
      else if !in_metrics && String.length line > 0 && line.[0] = '"' then
        match String.index_opt (String.sub line 1 (String.length line - 1)) '"'
        with
        | None -> failwith (path ^ ": malformed snapshot line: " ^ line)
        | Some close ->
            let name = String.sub line 1 close in
            let rest =
              (* skip the closing quote, then a colon and spacing *)
              String.trim
                (String.sub line (close + 2) (String.length line - close - 2))
            in
            let rest =
              match String.length rest with
              | 0 -> failwith (path ^ ": malformed snapshot line: " ^ line)
              | _ when rest.[0] = ':' ->
                  String.trim (String.sub rest 1 (String.length rest - 1))
              | _ -> failwith (path ^ ": malformed snapshot line: " ^ line)
            in
            if String.length rest > 0 && rest.[0] = '{' then
              () (* histogram summary: not a scalar *)
            else
              let rest =
                match String.length rest with
                | n when n > 0 && rest.[n - 1] = ',' ->
                    String.sub rest 0 (n - 1)
                | _ -> rest
              in
              match float_of_string_opt rest with
              | Some v -> metrics := (name, v) :: !metrics
              | None when rest = "null" -> () (* non-finite gauge *)
              | None ->
                  failwith (path ^ ": non-numeric metric value: " ^ line))
    (List.rev !lines);
  List.rev !metrics
