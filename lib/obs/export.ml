(** Registry exporters (see export.mli). *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* %.17g round-trips every float; strip a trailing "." OCaml never emits
   but be defensive about "inf"/"nan" (not valid JSON). *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null"

let add_value b = function
  | Metrics.Int n -> Buffer.add_string b (string_of_int n)
  | Metrics.Float f -> Buffer.add_string b (json_float f)
  | Metrics.Summary s ->
      Buffer.add_string b
        (Printf.sprintf
           "{ \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \
            \"mean\": %s }"
           s.Metrics.hs_count s.hs_sum s.hs_min s.hs_max
           (json_float s.hs_mean))

let json ?(meta = []) registry =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"meta\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      buf_add_json_string b k;
      Buffer.add_string b ": ";
      buf_add_json_string b v)
    meta;
  if meta <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "},\n  \"metrics\": {";
  let metrics = Metrics.dump registry in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      buf_add_json_string b name;
      Buffer.add_string b ": ";
      add_value b v)
    metrics;
  if metrics <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "}\n}\n";
  Buffer.contents b

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let csv ?(meta = []) registry =
  let b = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "# %s=%s\n" k v))
    meta;
  Buffer.add_string b "metric,value\n";
  let row name v =
    Buffer.add_string b (Printf.sprintf "%s,%s\n" (csv_cell name) v)
  in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Int n -> row name (string_of_int n)
      | Metrics.Float f -> row name (csv_float f)
      | Metrics.Summary s ->
          row (name ^ ".count") (string_of_int s.Metrics.hs_count);
          row (name ^ ".sum") (string_of_int s.hs_sum);
          row (name ^ ".min") (string_of_int s.hs_min);
          row (name ^ ".max") (string_of_int s.hs_max);
          row (name ^ ".mean") (csv_float s.hs_mean))
    (Metrics.dump registry);
  Buffer.contents b

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
