(** Structured observability events.

    The vocabulary of everything the stack reports while running: the
    machine layer emits {!Fence}, {!Flush} and {!Crash}; the persistent
    log emits {!Log_append} and {!Log_compact}; the execution traces emit
    {!Cas_retry} and (wait-free helping) {!Help}; the universal
    construction emits {!Help} (persist-stage helping), {!Checkpoint} and
    {!Recovery}; the fault-injection layer and the hardened recovery
    paths emit {!Fault_injected}, {!Retry}, {!Salvage} and
    {!Recovery_interrupted}. Every event carries the emitting process id and a
    logical timestamp stamped by the {!Sink} it is delivered to, so a
    single sink installed across components yields one totally ordered
    event stream. *)

(** How a durable client session (E15) disposed of a submission or of the
    post-crash in-doubt resolution. *)
type session_outcome =
  | Sess_ok  (** submission acknowledged *)
  | Sess_timeout  (** deadline expired retrying transients; in doubt *)
  | Sess_shed  (** admission control refused before any durable work *)
  | Sess_refused  (** degradation policy refused the write path *)
  | Sess_applied  (** recovery found the in-doubt op applied; not re-run *)
  | Sess_reinvoked
      (** recovery found the in-doubt op lost and re-invoked it under a
          fresh identity *)

type kind =
  | Fence of { persistent : bool }
      (** A fence instruction; [persistent] iff write-backs were pending. *)
  | Flush of { lines : int }
      (** Asynchronous write-backs issued for [lines] dirty cache lines. *)
  | Cas_retry of { site : string }
      (** A CAS lost a race and the operation retried, at [site]. *)
  | Help of { helped : int }
      (** The emitting process completed [helped] other processes' work
          (persist-stage fuzzy-window helping, or a wait-free trace
          insertion finished on a peer's behalf). *)
  | Checkpoint of { upto : int }
      (** History up to execution index [upto] was summarised (§8). *)
  | Recovery of { ops : int }
      (** Post-crash recovery re-installed [ops] operations. *)
  | Crash  (** Full-system crash: all volatile state lost. *)
  | Log_append of { log : string; bytes : int }
      (** One single-fence append of [bytes] payload bytes to [log]. *)
  | Log_compact of { log : string; dropped : int }
      (** [log]'s head durably advanced past [dropped] entries. *)
  | Fault_injected of { fault : string }
      (** The fault-injection layer perturbed the system: ["bitflip"],
          ["torn"], ["flush_transient"], ["fence_transient"] or
          ["recovery_crash"]. *)
  | Retry of { site : string; attempt : int }
      (** A component retried a transiently failed durable operation
          (bounded retry with backoff); [attempt] counts from 1. *)
  | Salvage of { log : string; quarantined : int; bytes_lost : int }
      (** Recovery of [log] skipped [quarantined] corrupt interior spans
          and/or truncated a torn tail, losing [bytes_lost] durable
          bytes. *)
  | Recovery_interrupted of { at_op : int }
      (** A scheduled nested crash fired [at_op] durable-memory operations
          into a recovery attempt. *)
  | Repair of { log : string; entries : int; bytes : int }
      (** Recovery (or a scrub) of a mirrored [log] restored [entries]
          diverged entries ([bytes] durable bytes) from an intact replica —
          damage healed with no data loss. *)
  | Scrub of { log : string; entries : int; repaired : int; unrepairable : int }
      (** An online scrub CRC-walked [entries] live entries of [log],
          repairing [repaired] cross-replica divergences and quarantining
          [unrepairable] spans corrupt in every replica. *)
  | Route of { shard : int; global : bool }
      (** The sharded construction (E14) routed an operation: to [shard]
          when [global] is [false], or fanned a global read out across
          every shard (in which case [shard] is the shard count). *)
  | Session of { client : int; seq : int; outcome : session_outcome }
      (** A durable client session (E15) disposed of [client]'s operation
          [seq]: see {!session_outcome}. *)
  | Txn of { shards : int; ops : int }
      (** A cross-shard transaction (E19) committed: [ops] sub-operations
          across [shards] participant shards, made durable by one
          coordinator fence. *)

type t = {
  time : int;  (** logical timestamp, unique and monotone per sink *)
  proc : int;  (** emitting process id; [-1] for whole-system events *)
  kind : kind;
}

let session_outcome_label = function
  | Sess_ok -> "ok"
  | Sess_timeout -> "timeout"
  | Sess_shed -> "shed"
  | Sess_refused -> "refused"
  | Sess_applied -> "applied"
  | Sess_reinvoked -> "reinvoked"

let kind_label = function
  | Fence { persistent } -> if persistent then "pfence" else "fence"
  | Flush _ -> "flush"
  | Cas_retry _ -> "cas_retry"
  | Help _ -> "help"
  | Checkpoint _ -> "checkpoint"
  | Recovery _ -> "recovery"
  | Crash -> "crash"
  | Log_append _ -> "log_append"
  | Log_compact _ -> "log_compact"
  | Fault_injected _ -> "fault_injected"
  | Retry _ -> "retry"
  | Salvage _ -> "salvage"
  | Recovery_interrupted _ -> "recovery_interrupted"
  | Repair _ -> "repair"
  | Scrub _ -> "scrub"
  | Route _ -> "route"
  | Session _ -> "session"
  | Txn _ -> "txn"

let pp ppf { time; proc; kind } =
  let p ppf = Format.fprintf ppf in
  p ppf "@[<h>%d p%d %s" time proc (kind_label kind);
  (match kind with
  | Fence _ | Crash -> ()
  | Flush { lines } -> p ppf " lines=%d" lines
  | Cas_retry { site } -> p ppf " site=%s" site
  | Help { helped } -> p ppf " helped=%d" helped
  | Checkpoint { upto } -> p ppf " upto=%d" upto
  | Recovery { ops } -> p ppf " ops=%d" ops
  | Log_append { log; bytes } -> p ppf " log=%s bytes=%d" log bytes
  | Log_compact { log; dropped } -> p ppf " log=%s dropped=%d" log dropped
  | Fault_injected { fault } -> p ppf " fault=%s" fault
  | Retry { site; attempt } -> p ppf " site=%s attempt=%d" site attempt
  | Salvage { log; quarantined; bytes_lost } ->
      p ppf " log=%s quarantined=%d bytes_lost=%d" log quarantined bytes_lost
  | Recovery_interrupted { at_op } -> p ppf " at_op=%d" at_op
  | Repair { log; entries; bytes } ->
      p ppf " log=%s entries=%d bytes=%d" log entries bytes
  | Scrub { log; entries; repaired; unrepairable } ->
      p ppf " log=%s entries=%d repaired=%d unrepairable=%d" log entries
        repaired unrepairable
  | Route { shard; global } ->
      if global then p ppf " global shards=%d" shard
      else p ppf " shard=%d" shard
  | Session { client; seq; outcome } ->
      p ppf " client=%d seq=%d outcome=%s" client seq
        (session_outcome_label outcome)
  | Txn { shards; ops } -> p ppf " shards=%d ops=%d" shards ops);
  p ppf "@]"
