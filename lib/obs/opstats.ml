(** Per-operation attribution bundle (see opstats.mli). *)

type t = {
  o_sink : Sink.t;
  ops_update : Metrics.counter;
  ops_read : Metrics.counter;
  fences_update : Metrics.counter;
  fences_read : Metrics.counter;
  fences_checkpoint : Metrics.counter;
  ops_scrub : Metrics.counter;
  fences_scrub : Metrics.counter;
  ops_txn : Metrics.counter;
  fences_txn : Metrics.counter;
  fuzzy : Metrics.histogram;
}

let make sink =
  (* An inactive sink gets a private throwaway registry so that handle
     resolution never mutates the shared [Sink.null] registry (which
     would race when objects are created from multiple domains). *)
  let r = if Sink.active sink then Sink.registry sink else Metrics.create () in
  {
    o_sink = sink;
    ops_update = Metrics.counter r "ops.update";
    ops_read = Metrics.counter r "ops.read";
    fences_update = Metrics.counter r "fences.update";
    fences_read = Metrics.counter r "fences.read";
    fences_checkpoint = Metrics.counter r "fences.checkpoint";
    ops_scrub = Metrics.counter r "ops.scrub";
    fences_scrub = Metrics.counter r "fences.scrub";
    ops_txn = Metrics.counter r "ops.txn";
    fences_txn = Metrics.counter r "fences.txn";
    fuzzy = Metrics.histogram r "fuzzy.window";
  }

let null = make Sink.null

let active t = Sink.active t.o_sink
let sink t = t.o_sink

let update_done t ~fences =
  Metrics.incr t.ops_update;
  Metrics.add t.fences_update fences

let read_done t ~fences =
  Metrics.incr t.ops_read;
  Metrics.add t.fences_read fences

let checkpoint_done t ~fences = Metrics.add t.fences_checkpoint fences

let scrub_done t ~fences =
  Metrics.incr t.ops_scrub;
  Metrics.add t.fences_scrub fences

let txn_done t ~fences =
  Metrics.incr t.ops_txn;
  Metrics.add t.fences_txn fences

let observe_fuzzy t n = Metrics.observe t.fuzzy n
