(** Per-operation metric attribution for object implementations.

    The paper's claims are {e per-operation-kind} fence counts — one
    persistent fence per {e update} (Theorem 5.1), zero per {e read} —
    which raw machine totals cannot express. This bundle pre-resolves the
    standard attribution metrics in a sink's registry:

    - ["ops.update"], ["ops.read"] — completed operations by kind;
    - ["fences.update"], ["fences.read"] — persistent fences executed by
      the invoking process {e during} operations of that kind (measured
      by the implementations as a per-process fence-counter delta around
      the operation body, so concurrent processes never pollute each
      other's attribution);
    - ["fences.checkpoint"] — fences spent on §8 checkpointing;
    - ["fuzzy.window"] — histogram of persist-stage window sizes
      (Prop. 5.2 bounds every observation by MAX-PROCESSES).

    Implementations hold one [Opstats.t] per object and guard every
    recording with {!active}, so an object built without a sink pays a
    single boolean test per operation. *)

type t

val null : t
(** Attribution over {!Sink.null}: never records. *)

val make : Sink.t -> t
(** Resolve the attribution metrics in [sink]'s registry (a private
    throwaway registry when [sink] is inactive). *)

val active : t -> bool
val sink : t -> Sink.t

val update_done : t -> fences:int -> unit
(** One update completed, having executed [fences] persistent fences on
    the invoking process. *)

val read_done : t -> fences:int -> unit
val checkpoint_done : t -> fences:int -> unit

val scrub_done : t -> fences:int -> unit
(** One online scrub pass completed, having executed [fences] persistent
    fences on the invoking process — recorded under ["ops.scrub"]/
    ["fences.scrub"], so scrub fences never pollute the per-update
    Theorem 5.1 attribution. *)

val txn_done : t -> fences:int -> unit
(** One cross-shard transaction (E19) committed, having executed [fences]
    persistent fences on the coordinating process — recorded under
    ["ops.txn"]/["fences.txn"]. The E19 headline is exactly this ratio:
    one coordinator fence per transaction, versus the 2PC baseline's
    participants + 1. *)

val observe_fuzzy : t -> int -> unit
