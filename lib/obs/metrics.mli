(** Lightweight in-process metrics registry.

    A registry holds named {e counters} (monotone integers), {e gauges}
    (last-write-wins floats) and {e histograms} (log2-bucketed integer
    observations). Metric handles are resolved once by name
    (get-or-create) and then updated with plain field mutations, so the
    instrumented hot paths pay one unguarded store per update — no
    hashing, no allocation.

    Registries are {b not} thread-safe: updates are plain mutations.
    Under the deterministic simulator ({!Onll_machine.Sim}) this is
    exact; under the multi-domain native machine concurrent increments
    may race and counts are approximate (documented best-effort — fence
    accounting there uses {!Onll_machine.Native}'s own atomics). *)

exception Kind_mismatch of string
(** A metric name is already registered with a different kind. *)

type t
(** A registry: a mutable name → metric table. *)

type counter
type gauge
type histogram

type histogram_summary = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;  (** 0 when empty *)
  hs_max : int;  (** 0 when empty *)
  hs_mean : float;  (** 0. when empty *)
}

val create : unit -> t

(** {1 Handles (get-or-create)} *)

val counter : t -> string -> counter
(** @raise Kind_mismatch if [name] exists with a different kind.
    @raise Invalid_argument on the empty name. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val counter_name : counter -> string
val gauge_name : gauge -> string
val histogram_name : histogram -> string

(** {1 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
val value : gauge -> float

val observe : histogram -> int -> unit
val summary : histogram -> histogram_summary

(** {1 Reading a registry} *)

type value =
  | Int of int  (** counter *)
  | Float of float  (** gauge *)
  | Summary of histogram_summary  (** histogram *)

val find : t -> string -> value option

val counter_value : t -> string -> int
(** The named counter's count, or [0] if absent or not a counter —
    convenient for assertions over snapshots. *)

val dump : t -> (string * value) list
(** Every registered metric, sorted by name. *)
