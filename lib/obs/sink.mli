(** Structured event sinks.

    A sink is where instrumented components deliver {!Event.t}s. Every
    sink owns a {!Metrics.t} registry into which it folds each event as
    it arrives (fence → ["fences.total"]/["fences.persistent"], flush →
    ["flushes"]/["flushes.lines"], cas_retry → ["cas.retries"], help →
    ["help.events"]/["help.ops"], checkpoint → ["checkpoints"], recovery
    → ["recoveries"]/["recovery.ops"], crash → ["crashes"], log_append →
    ["log.appends"]/["log.bytes"], log_compact → ["log.compactions"]/
    ["log.dropped_entries"], fault_injected → ["faults.injected"], retry →
    ["retries"], salvage → ["salvages"]/["salvage.quarantined"]/
    ["salvage.bytes_lost"], recovery_interrupted →
    ["recovery.interruptions"], repair → ["repairs"]/["repair.entries"]/
    ["repair.bytes"], scrub → ["scrubs"]/["scrub.entries"]/
    ["scrub.repaired"]/["scrub.unrepairable"], route → ["routes"]/
    ["routes.global"], session → ["session.ops"] plus one of
    ["session.ok"]/["session.timeouts"]/["session.sheds"]/
    ["session.refused"]/["session.resolved.applied"]/
    ["session.resolved.reinvoked"]), and optionally a handler that receives the
    full structured stream. Events are stamped with a per-sink logical
    clock, so one sink threaded through several components yields a
    single totally ordered history.

    {b Zero overhead by default.} Components hold {!null} unless a sink
    is explicitly installed; {!emit} on an inactive sink returns
    immediately, and hot paths additionally guard with {!active} so they
    do not even allocate the event payload:
    {[
      if Sink.active sink then
        Sink.emit sink ~proc (Event.Fence { persistent = true })
    ]} *)

type t

val null : t
(** The default no-op sink: {!active} is [false], {!emit} does nothing.
    Its registry exists (so handle resolution never needs an option) but
    is never written. *)

val make :
  ?registry:Metrics.t -> ?handler:(Event.t -> unit) -> unit -> t
(** An active sink. [registry] (fresh by default) receives the folded
    counters; [handler], when given, receives every stamped event. *)

val recording :
  ?registry:Metrics.t -> unit -> t * (unit -> Event.t list)
(** [recording ()] is an active sink plus a function returning every
    event emitted so far, oldest first — for tests and debugging. *)

val active : t -> bool
(** [false] only for {!null}. Hot paths check this before building an
    event payload. *)

val emit : t -> proc:int -> Event.kind -> unit
(** Stamp and deliver an event. No-op on {!null}. Use [proc = -1] for
    whole-system events (crash). *)

val registry : t -> Metrics.t
val now : t -> int
(** The logical clock: number of events emitted so far. *)
