(** Lightweight in-process metrics registry (see metrics.mli). *)

exception Kind_mismatch of string

type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable g_value : float }

(* Fixed log2 bucketing: bucket [i] counts observations [v] with
   [bits v = i], i.e. bucket 0 is v <= 0, bucket 1 is v = 1, bucket 2 is
   2..3, bucket 3 is 4..7, ... Observed values are small structural
   quantities (fuzzy-window sizes, pending line counts), so 32 buckets
   cover every realistic input. *)
let histogram_buckets = 32

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

type histogram_summary = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;  (** 0 when empty *)
  hs_max : int;  (** 0 when empty *)
  hs_mean : float;  (** 0. when empty *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let check_name name =
  if name = "" then invalid_arg "Metrics: empty metric name"

let counter t name =
  check_name name;
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some _ -> raise (Kind_mismatch name)
  | None ->
      let c = { c_name = name; c_count = 0 } in
      Hashtbl.replace t.table name (Counter c);
      c

let gauge t name =
  check_name name;
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some _ -> raise (Kind_mismatch name)
  | None ->
      let g = { g_name = name; g_value = 0. } in
      Hashtbl.replace t.table name (Gauge g);
      g

let histogram t name =
  check_name name;
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some _ -> raise (Kind_mismatch name)
  | None ->
      let h =
        {
          h_name = name;
          h_count = 0;
          h_sum = 0;
          h_min = 0;
          h_max = 0;
          h_buckets = Array.make histogram_buckets 0;
        }
      in
      Hashtbl.replace t.table name (Histogram h);
      h

let counter_name c = c.c_name
let gauge_name g = g.g_name
let histogram_name h = h.h_name

let incr c = c.c_count <- c.c_count + 1
let add c n = c.c_count <- c.c_count + n
let count c = c.c_count

let set g v = g.g_value <- v
let value g = g.g_value

let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (histogram_buckets - 1) (bits 0 v)

let observe h v =
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let summary h =
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = (if h.h_count = 0 then 0 else h.h_min);
    hs_max = (if h.h_count = 0 then 0 else h.h_max);
    hs_mean =
      (if h.h_count = 0 then 0.
       else float_of_int h.h_sum /. float_of_int h.h_count);
  }

type value = Int of int | Float of float | Summary of histogram_summary

let value_of = function
  | Counter c -> Int c.c_count
  | Gauge g -> Float g.g_value
  | Histogram h -> Summary (summary h)

let find t name = Option.map value_of (Hashtbl.find_opt t.table name)

let counter_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c.c_count
  | Some _ | None -> 0

let dump t =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
