(** Single-persistent-fence append-only log (after Cohen et al., OOPSLA'17).

    The log ONLL builds on (paper §4.1.1): each {!Make.append} makes its
    payload durable with exactly {e one} persistent fence. The trick is that
    an entry carries a CRC over its length and payload, so no write ordering
    between "data" and "commit record" is needed: an entry is committed iff
    its checksum validates, and recovery simply scans the log and stops at
    the first entry that does not. Only the last entry can be torn (appends
    are fenced before the append call returns), so the valid prefix is
    exactly the set of fenced appends plus possibly a lucky unfenced one —
    either is a legal durable state.

    The log also supports compaction (paper §8): {!Make.set_head} durably
    advances a head pointer past entries made redundant by a checkpoint,
    using a two-slot versioned header so that a crash during the head update
    preserves one valid header.

    {b Media-fault hardening.} Under the fault model of [Onll_faults],
    durable bytes can rot {e anywhere}, not just at the tail. {!Make.recover}
    therefore runs a {e salvage scan}: where the valid prefix stops, it
    searches forward for a resync point (the next CRC-valid entry). If one
    exists, the bytes in between are interior corruption — they are
    quarantined behind a durable, CRC-protected {e skip marker} and the
    entries beyond survive; the loss is reported precisely. If none exists,
    the garbage is a torn tail — it is zeroed and the log truncated, which
    loses nothing a completed append ever acknowledged. All repairs are
    idempotent (rewriting a marker is byte-identical; re-zeroing zeros is a
    no-op), so recovery interrupted by a nested crash at any point converges.
    Transiently failing flushes/fences ({!Onll_nvm.Memory.Transient_fault})
    are retried with a bounded budget, emitting [Retry] events.

    {b Durable redundancy (mirroring).} {!Make.create} takes [replicas]
    (default 1): with [replicas = R], every append, head update and repair
    is written identically to [R] independent NVM regions, and {e all}
    replica flushes drain under a {e single} persistent fence (pending
    write-backs are per process, not per region), so the one-fence append
    economy is unchanged. Recovery then becomes {e repair-aware}: where one
    replica's CRC scan stops, the other replicas are consulted at the same
    offset, and an intact copy is restored in place (durably, idempotently)
    and counted as [repaired] — not lost. Only a span corrupt in {e every}
    replica is quarantined, and a tail with no valid copy anywhere is
    truncated as torn. This disambiguates the single-copy tail ambiguity:
    an ordinary torn append tears {e all} replica tails (no copy was ever
    fenced), while a media fault hits one — which the mirror heals.
    {!Make.scrub} is the online half of the same mechanism: a cooperative
    CRC-walk over the live entries (callable between operations like any
    process step) that heals cross-replica divergence {e before} a crash
    forces recovery to, and quarantines double-fault spans it cannot.

    Layout (byte offsets within each replica region; replicas are
    byte-identical when healthy):
    {v
    0   header slot A: seq:int64  head:int64  crc32(seq‖head):int64
    32  header slot B: same
    64  entries: [len:int64  crc32(len‖payload):int64  payload] ...
        skip marker: [-span:int64  crc32(-span‖magic):int64]  (16 bytes)
    v} *)

exception Full
(** Raised by [append] when a log's entries area is exhausted. The
    exception is shared by every [Make] instantiation. *)

val replica_region_name : string -> int -> string
(** [replica_region_name name r] is the NVM region name of replica [r] of a
    log created as [name]: [name] itself for [r = 0] (the primary),
    ["name~r"] for mirrors. *)

val is_mirror_region : string -> bool
(** Does this region name denote a mirror replica (contains ['~'])? Fault
    plans use this to target one side of a mirrored log —
    e.g. [target = (fun n -> not (is_mirror_region n))] corrupts primaries
    only. *)

type salvage_report = {
  torn_tail_bytes : int;
      (** garbage bytes zeroed and truncated at the tail (no valid entry —
          in any replica — followed them); torn unacknowledged appends land
          here, so a nonzero value after a clean crash is normal and not
          data loss *)
  quarantined_spans : int;
      (** interior spans corrupt in {e every} replica, newly quarantined
          behind skip markers this recovery — each one is durable data
          loss *)
  quarantined_bytes : int;  (** total bytes in those spans *)
  skip_markers : int;
      (** skip markers present in the log after recovery, including ones
          left by earlier recoveries *)
  repaired_entries : int;
      (** entries restored from an intact replica this recovery — damage
          healed, {e not} loss *)
  repaired_bytes : int;  (** durable bytes rewritten by those repairs *)
}

val clean_report : salvage_report
(** All zeros — what a recovery of an uncorrupted log reports. *)

val report_lost : salvage_report -> int
(** Durable bytes discarded by this recovery (torn + quarantined);
    repaired bytes are {e not} lost. *)

val pp_salvage_report : Format.formatter -> salvage_report -> unit

type scrub_report = {
  scrubbed_entries : int;  (** live entries CRC-walked *)
  scrub_repaired_entries : int;
      (** diverged entries healed from an intact replica *)
  scrub_repaired_bytes : int;
  unrepairable_spans : int;
      (** spans corrupt in every replica — quarantined and counted; the
          data is gone and the log is degraded *)
}

val clean_scrub : scrub_report
val add_scrub : scrub_report -> scrub_report -> scrub_report
(** Component-wise sum, for aggregating per-log scrubs. *)

val pp_scrub_report : Format.formatter -> scrub_report -> unit

module Make (M : Onll_machine.Machine_sig.S) : sig
  type t

  val create :
    ?sink:Onll_obs.Sink.t ->
    ?replicas:int ->
    name:string ->
    capacity:int ->
    unit ->
    t
  (** A fresh log over [replicas] (default 1) independent persistent
      regions of [capacity] bytes each (entries area; header overhead is
      added on top), named {!replica_region_name}[ name r]. [sink] (default
      {!Onll_obs.Sink.null}) receives a [Log_append] event per append, a
      [Log_compact] event per head advance, a [Retry] event per transient
      fault retried, a [Salvage] event per repairing recovery, a [Repair]
      event when recovery heals replica divergence and a [Scrub] event per
      {!scrub} pass. @raise Invalid_argument if [replicas < 1]. *)

  val replicas : t -> int

  val region_names : t -> string list
  (** The replica region names, primary first. *)

  val append : t -> string -> unit
  (** Append a payload and make it durable in every replica: store to all
      replicas, flush all, one fence — exactly one persistent fence
      regardless of the replica count (transient fault retries excepted).
      @raise Full if the entries area is exhausted (compact or resize). *)

  val try_append : t -> string -> (unit, [ `Full ]) result
  (** [append] with a typed full condition instead of an exception. *)

  val entries : t -> string list
  (** The durable valid entries from the current head, oldest first, read
      back from (simulated) NVM, stepping over skip markers. This is the
      recovery read path; it performs no fences. *)

  val recover : t -> salvage_report
  (** Reset the in-memory cursors from the durable contents — call after a
      crash before appending again. Runs the salvage scan described in the
      module doc, consulting every replica at each stop: an entry with an
      intact copy anywhere is durably restored in place ([repaired]), a
      span corrupt everywhere is quarantined ([skip markers]), a tail with
      no valid copy anywhere is zeroed and truncated; replica headers are
      re-converged. The report says exactly what was repaired and what was
      lost. A recovery that itself crashes mid-repair converges when
      re-run: every repair is idempotent. *)

  val recover_unhardened : t -> unit
  (** The pre-hardening recovery: truncate the primary at the first invalid
      entry — silently dropping every entry after an interior corruption,
      consulting no mirror, with no repair and no report. Calibration
      baseline for the chaos campaigns (E12/E13); never use it otherwise. *)

  val scrub : t -> scrub_report
  (** Online self-healing: CRC-walk the live entries (head to tail) across
      all replicas {e while the log is in use}, durably repairing any
      replica divergence from an intact copy and quarantining spans corrupt
      in every replica. Also re-converges diverged replica headers. Safe to
      call between operations from any process (it is a cooperative step:
      every access is an ordinary machine operation); costs persistent
      fences only for actual repairs. Idempotent: a second scrub of an
      unchanged log reports all-clean. *)

  val set_head : t -> int -> unit
  (** [set_head t n] durably discards the oldest [n] valid entries (one
      persistent fence for the header update, covering every replica).
      @raise Invalid_argument if fewer than [n] entries exist. *)

  val entry_count : t -> int
  (** Number of valid entries from the head (by durable scan). *)

  val used_bytes : t -> int
  (** Bytes of the entries area in use, including dead pre-head bytes
      ([capacity] minus this is the space left for appends). *)

  val live_bytes : t -> int
  (** Bytes occupied by live (post-head) entries. *)

  val free_bytes : t -> int
  (** Bytes left for appends before {!Full}. *)

  val relocate : t -> unit
  (** Physically move the live span (head to tail) to the front of the
      entries area in every replica, reclaiming the dead pre-head bytes for
      appends — {!set_head} alone only advances a pointer and never frees
      append space. Durable and crash-atomic (copy below the old head
      first, then switch the two-slot header, then zero the stale span).
      The copy is repair-aware: each record is sourced from whichever
      replica's copy revalidates on load, so a record rotted on the
      primary is restored from its mirror rather than propagated (and the
      mirrors' intact copy is never zeroed away); a span corrupt in every
      replica is quarantined behind a skip marker at the destination and
      reported with a [Salvage] event, exactly as {!scrub} would in place.
      No-op when there is nothing to reclaim or the live span would overlap
      its destination; call after a checkpoint has shrunk the live set. *)

  val capacity : t -> int
  val name : t -> string
end
