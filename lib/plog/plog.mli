(** Single-persistent-fence append-only log (after Cohen et al., OOPSLA'17).

    The log ONLL builds on (paper §4.1.1): each {!Make.append} makes its
    payload durable with exactly {e one} persistent fence. The trick is that
    an entry carries a CRC over its length and payload, so no write ordering
    between "data" and "commit record" is needed: an entry is committed iff
    its checksum validates, and recovery simply scans the log and stops at
    the first entry that does not. Only the last entry can be torn (appends
    are fenced before the append call returns), so the valid prefix is
    exactly the set of fenced appends plus possibly a lucky unfenced one —
    either is a legal durable state.

    The log also supports compaction (paper §8): {!Make.set_head} durably
    advances a head pointer past entries made redundant by a checkpoint,
    using a two-slot versioned header so that a crash during the head update
    preserves one valid header.

    Layout (byte offsets within the region):
    {v
    0   header slot A: seq:int64  head:int64  crc32(seq‖head):int64
    32  header slot B: same
    64  entries: [len:int64  crc32(len‖payload):int64  payload] ...
    v} *)

exception Full
(** Raised by [append] when a log's entries area is exhausted. The
    exception is shared by every [Make] instantiation. *)

module Make (M : Onll_machine.Machine_sig.S) : sig
  type t

  val create :
    ?sink:Onll_obs.Sink.t -> name:string -> capacity:int -> unit -> t
  (** A fresh log in a new persistent region of [capacity] bytes (entries
      area; header overhead is added on top). [sink] (default
      {!Onll_obs.Sink.null}) receives a [Log_append] event per append and a
      [Log_compact] event per head advance. *)

  val append : t -> string -> unit
  (** Append a payload and make it durable: store, flush, one fence —
      exactly one persistent fence. @raise Full if the entries area is
      exhausted (compact or resize). *)

  val entries : t -> string list
  (** The durable valid entries from the current head, oldest first, read
      back from (simulated) NVM. This is the recovery read path; it performs
      no fences. *)

  val recover : t -> unit
  (** Reset the in-memory append cursor from the durable contents — call
      after a crash before appending again. *)

  val set_head : t -> int -> unit
  (** [set_head t n] durably discards the oldest [n] valid entries (one
      persistent fence for the header update). Appends are unaffected.
      @raise Invalid_argument if fewer than [n] entries exist. *)

  val entry_count : t -> int
  (** Number of valid entries from the head (by durable scan). *)

  val used_bytes : t -> int
  (** Bytes of the entries area in use, including dead pre-head bytes
      ([capacity] minus this is the space left for appends). *)

  val live_bytes : t -> int
  (** Bytes occupied by live (post-head) entries. *)

  val capacity : t -> int
  val name : t -> string
end
