(** Single-persistent-fence append-only log (after Cohen et al., OOPSLA'17).

    The log ONLL builds on (paper §4.1.1): each {!Make.append} makes its
    payload durable with exactly {e one} persistent fence. The trick is that
    an entry carries a CRC over its length and payload, so no write ordering
    between "data" and "commit record" is needed: an entry is committed iff
    its checksum validates, and recovery simply scans the log and stops at
    the first entry that does not. Only the last entry can be torn (appends
    are fenced before the append call returns), so the valid prefix is
    exactly the set of fenced appends plus possibly a lucky unfenced one —
    either is a legal durable state.

    The log also supports compaction (paper §8): {!Make.set_head} durably
    advances a head pointer past entries made redundant by a checkpoint,
    using a two-slot versioned header so that a crash during the head update
    preserves one valid header.

    {b Media-fault hardening.} Under the fault model of [Onll_faults],
    durable bytes can rot {e anywhere}, not just at the tail. {!Make.recover}
    therefore runs a {e salvage scan}: where the valid prefix stops, it
    searches forward for a resync point (the next CRC-valid entry). If one
    exists, the bytes in between are interior corruption — they are
    quarantined behind a durable, CRC-protected {e skip marker} and the
    entries beyond survive; the loss is reported precisely. If none exists,
    the garbage is a torn tail — it is zeroed and the log truncated, which
    loses nothing a completed append ever acknowledged. All repairs are
    idempotent (rewriting a marker is byte-identical; re-zeroing zeros is a
    no-op), so recovery interrupted by a nested crash at any point converges.
    Transiently failing flushes/fences ({!Onll_nvm.Memory.Transient_fault})
    are retried with a bounded budget, emitting [Retry] events.

    Layout (byte offsets within the region):
    {v
    0   header slot A: seq:int64  head:int64  crc32(seq‖head):int64
    32  header slot B: same
    64  entries: [len:int64  crc32(len‖payload):int64  payload] ...
        skip marker: [-span:int64  crc32(-span‖magic):int64]  (16 bytes)
    v} *)

exception Full
(** Raised by [append] when a log's entries area is exhausted. The
    exception is shared by every [Make] instantiation. *)

type salvage_report = {
  torn_tail_bytes : int;
      (** garbage bytes zeroed and truncated at the tail (no valid entry
          followed them); torn unacknowledged appends land here, so a
          nonzero value after a clean crash is normal and not data loss *)
  quarantined_spans : int;
      (** interior corrupt spans newly quarantined behind skip markers
          this recovery — each one is durable data loss *)
  quarantined_bytes : int;  (** total bytes in those spans *)
  skip_markers : int;
      (** skip markers present in the log after recovery, including ones
          left by earlier recoveries *)
}

val clean_report : salvage_report
(** All zeros — what a recovery of an uncorrupted log reports. *)

val report_lost : salvage_report -> int
(** Durable bytes discarded by this recovery (torn + quarantined). *)

val pp_salvage_report : Format.formatter -> salvage_report -> unit

module Make (M : Onll_machine.Machine_sig.S) : sig
  type t

  val create :
    ?sink:Onll_obs.Sink.t -> name:string -> capacity:int -> unit -> t
  (** A fresh log in a new persistent region of [capacity] bytes (entries
      area; header overhead is added on top). [sink] (default
      {!Onll_obs.Sink.null}) receives a [Log_append] event per append, a
      [Log_compact] event per head advance, a [Retry] event per transient
      fault retried and a [Salvage] event per repairing recovery. *)

  val append : t -> string -> unit
  (** Append a payload and make it durable: store, flush, one fence —
      exactly one persistent fence (transient fault retries excepted).
      @raise Full if the entries area is exhausted (compact or resize). *)

  val try_append : t -> string -> (unit, [ `Full ]) result
  (** [append] with a typed full condition instead of an exception. *)

  val entries : t -> string list
  (** The durable valid entries from the current head, oldest first, read
      back from (simulated) NVM, stepping over skip markers. This is the
      recovery read path; it performs no fences. *)

  val recover : t -> salvage_report
  (** Reset the in-memory cursors from the durable contents — call after a
      crash before appending again. Runs the salvage scan described in the
      module doc, durably repairing interior corruption (skip markers) and
      torn tails (zeroed and truncated); the report says exactly what was
      lost. A recovery that itself crashes mid-repair converges when
      re-run: repairs are idempotent. *)

  val recover_unhardened : t -> unit
  (** The pre-hardening recovery: truncate at the first invalid entry —
      silently dropping every entry after an interior corruption, with no
      repair and no report. Calibration baseline for the chaos campaign
      (E12), which must catch it losing data; never use it otherwise. *)

  val set_head : t -> int -> unit
  (** [set_head t n] durably discards the oldest [n] valid entries (one
      persistent fence for the header update). Appends are unaffected.
      @raise Invalid_argument if fewer than [n] entries exist. *)

  val entry_count : t -> int
  (** Number of valid entries from the head (by durable scan). *)

  val used_bytes : t -> int
  (** Bytes of the entries area in use, including dead pre-head bytes
      ([capacity] minus this is the space left for appends). *)

  val live_bytes : t -> int
  (** Bytes occupied by live (post-head) entries. *)

  val free_bytes : t -> int
  (** Bytes left for appends before {!Full}. *)

  val relocate : t -> unit
  (** Physically move the live span (head to tail) to the front of the
      entries area, reclaiming the dead pre-head bytes for appends —
      {!set_head} alone only advances a pointer and never frees append
      space. Durable and crash-atomic (copy below the old head first, then
      switch the two-slot header, then zero the stale span). No-op when
      there is nothing to reclaim or the live span would overlap its
      destination; call after a checkpoint has shrunk the live set. *)

  val capacity : t -> int
  val name : t -> string
end
