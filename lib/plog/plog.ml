open Onll_util

let header_size = 64
let slot_a = 0
let slot_b = 32
let slot_bytes = 24

(* Salvage skip markers: a 16-byte pseudo-entry [neg_span:int64
   crc32(neg_span‖magic):int64] written over the start of a quarantined
   corrupt span. Negative length distinguishes it from real entries; the
   CRC distinguishes it from garbage. Any quarantined span is >= 17 bytes
   (a real entry is 16 bytes of header plus a non-empty payload), so the
   marker always fits. *)
let skip_magic = 0x534B49504D41524BL (* "SKIPMARK" *)

(* Bounded retry budget for transiently failing flush/fence pairs. Fault
   plans cap consecutive transient failures well below this, so a durable
   operation always eventually lands. *)
let retry_budget = 8

let crc_of_int64s a b =
  let buf = Bytes.create 16 in
  Bytes.set_int64_le buf 0 a;
  Bytes.set_int64_le buf 8 b;
  Crc32.bytes buf ~pos:0 ~len:16

let crc_to_int64 c = Int64.logand (Int64.of_int32 c) 0xFFFFFFFFL

exception Full

let entry_crc payload =
  let buf = Bytes.create (8 + String.length payload) in
  Bytes.set_int64_le buf 0 (Int64.of_int (String.length payload));
  Bytes.blit_string payload 0 buf 8 (String.length payload);
  Crc32.bytes buf ~pos:0 ~len:(Bytes.length buf)

type salvage_report = {
  torn_tail_bytes : int;
  quarantined_spans : int;
  quarantined_bytes : int;
  skip_markers : int;
}

let clean_report =
  {
    torn_tail_bytes = 0;
    quarantined_spans = 0;
    quarantined_bytes = 0;
    skip_markers = 0;
  }

let report_lost r = r.torn_tail_bytes + r.quarantined_bytes

let pp_salvage_report ppf r =
  Format.fprintf ppf
    "@[<h>torn_tail=%dB quarantined=%d spans (%dB) markers=%d@]"
    r.torn_tail_bytes r.quarantined_spans r.quarantined_bytes r.skip_markers

module Make (M : Onll_machine.Machine_sig.S) = struct
  type t = {
    region : M.Pm.t;
    log_name : string;
    log_capacity : int;  (* entries area bytes *)
    sink : Onll_obs.Sink.t;
    mutable tail : int;  (* next append offset (absolute) *)
    mutable head : int;  (* first live entry offset (absolute) *)
    mutable header_seq : int64;
  }

  let name t = t.log_name
  let capacity t = t.log_capacity
  let log_end t = header_size + t.log_capacity

  let emit_retry t ~site ~attempt =
    if Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:(M.self ())
        (Onll_obs.Event.Retry { site; attempt })

  (* Make [off, off+len) durable: flush then one fence, retrying the pair
     on transient faults. A failed flush queued nothing and a failed fence
     left the pending set intact; re-flushing re-queues snapshots of the
     same dirty lines, so retrying the whole pair is idempotent. *)
  let persist t ~site ~off ~len =
    let rec go attempt =
      match
        M.Pm.flush t.region ~off ~len;
        M.fence ()
      with
      | () -> ()
      | exception Onll_nvm.Memory.Transient_fault _
        when attempt <= retry_budget ->
          emit_retry t ~site ~attempt;
          go (attempt + 1)
    in
    go 1

  (* Read one header slot; [Some (seq, head)] if its checksum validates and
     the head is in range. *)
  let read_slot t off =
    let seq = M.Pm.load_int64 t.region ~off in
    let head = M.Pm.load_int64 t.region ~off:(off + 8) in
    let crc = M.Pm.load_int64 t.region ~off:(off + 16) in
    if
      crc = crc_to_int64 (crc_of_int64s seq head)
      && head >= Int64.of_int header_size
      && head <= Int64.of_int (log_end t)
      && seq > 0L
    then Some (seq, Int64.to_int head)
    else None

  let read_header t =
    match (read_slot t slot_a, read_slot t slot_b) with
    | None, None -> (0L, header_size)
    | Some (s, h), None | None, Some (s, h) -> (s, h)
    | Some (sa, ha), Some (sb, hb) ->
        if sa >= sb then (sa, ha) else (sb, hb)

  (* A valid skip marker at [pos]? Returns the span it quarantines. *)
  let read_skip t pos =
    let stop = log_end t in
    if pos + 16 > stop then None
    else
      let len64 = M.Pm.load_int64 t.region ~off:pos in
      if Int64.compare len64 0L >= 0 then None
      else
        let span = Int64.to_int (Int64.neg len64) in
        let stored = M.Pm.load_int64 t.region ~off:(pos + 8) in
        if
          stored = crc_to_int64 (crc_of_int64s len64 skip_magic)
          && span >= 16
          && pos + span <= stop
        then Some span
        else None

  (* Scan the valid entries from [head], transparently stepping over valid
     skip markers left by salvage; returns (payload, offset) pairs in
     order, the end-of-valid-prefix offset, and the markers stepped
     over. *)
  let scan t head =
    let stop = log_end t in
    let rec loop pos acc markers =
      if pos + 16 > stop then (List.rev acc, pos, markers)
      else
        let len64 = M.Pm.load_int64 t.region ~off:pos in
        let len = Int64.to_int len64 in
        if len <= 0 then
          match read_skip t pos with
          | Some span -> loop (pos + span) acc (markers + 1)
          | None -> (List.rev acc, pos, markers)
        else if pos + 16 + len > stop then (List.rev acc, pos, markers)
        else
          let stored = M.Pm.load_int64 t.region ~off:(pos + 8) in
          let payload = M.Pm.load t.region ~off:(pos + 16) ~len in
          if stored <> crc_to_int64 (entry_crc payload) then
            (List.rev acc, pos, markers)
          else loop (pos + 16 + len) ((payload, pos) :: acc) markers
    in
    loop head [] 0

  let create ?(sink = Onll_obs.Sink.null) ~name ~capacity () =
    if capacity <= 0 then invalid_arg "Plog.create: non-positive capacity";
    let region = M.Pm.create ~name ~size:(header_size + capacity) in
    {
      region;
      log_name = name;
      log_capacity = capacity;
      sink;
      tail = header_size;
      head = header_size;
      header_seq = 0L;
    }

  (* What lies at the end of the valid prefix [pos]:
     - [Clean]: zeros to the end of the region — a well-formed log end.
     - [Torn n]: [n] bytes of garbage with no valid entry anywhere after —
       a torn final write (or tail-only media damage). Truncation loses
       nothing that was ever acknowledged durable by a clean append, so
       the span is zeroed and the log ends at [pos].
     - [Corrupt_span span]: a CRC-valid entry (or marker) resumes [span]
       bytes further on — interior media corruption. The span is
       quarantined behind a skip marker; the entries after it survive. *)
  type tail_class = Clean | Torn of int | Corrupt_span of int

  let classify t pos =
    let stop = log_end t in
    if pos >= stop then Clean
    else begin
      let rest = M.Pm.load t.region ~off:pos ~len:(stop - pos) in
      (* Last nonzero byte bounds the search: an entry has a nonzero
         length field, so none can start in the all-zero suffix. *)
      let last_nz = ref (-1) in
      String.iteri (fun i c -> if c <> '\000' then last_nz := i) rest;
      if !last_nz < 0 then Clean
      else begin
        (* Resync search. The corrupted entry at [pos] originally occupied
           >= 17 bytes, so the next real boundary is at pos+17 or later —
           which also guarantees a quarantined span can hold the 16-byte
           marker. *)
        let n = String.length rest in
        let valid_at r =
          if r + 16 > n then false
          else
            let len64 = String.get_int64_le rest r in
            let len = Int64.to_int len64 in
            if len >= 1 then
              r + 16 + len <= n
              && String.get_int64_le rest (r + 8)
                 = crc_to_int64
                     (entry_crc (String.sub rest (r + 16) len))
            else if Int64.compare len64 0L < 0 then
              (* an earlier salvage's marker is a valid resync point *)
              let span = Int64.to_int (Int64.neg len64) in
              span >= 16
              && r + span <= n
              && String.get_int64_le rest (r + 8)
                 = crc_to_int64 (crc_of_int64s len64 skip_magic)
            else false
        in
        let resync = ref None in
        let r = ref 17 in
        while !resync = None && !r <= !last_nz do
          if valid_at !r then resync := Some !r;
          incr r
        done;
        match !resync with
        | Some r -> Corrupt_span r
        | None -> Torn (!last_nz + 1)
      end
    end

  let write_skip_marker t ~off ~span =
    let len64 = Int64.neg (Int64.of_int span) in
    M.Pm.store_int64 t.region ~off len64;
    M.Pm.store_int64 t.region ~off:(off + 8)
      (crc_to_int64 (crc_of_int64s len64 skip_magic));
    persist t ~site:"plog.salvage" ~off ~len:16

  let zero_span t ~off ~len =
    M.Pm.store t.region ~off (String.make len '\000');
    persist t ~site:"plog.salvage" ~off ~len

  let recover t =
    let seq, head = read_header t in
    t.header_seq <- seq;
    t.head <- head;
    let torn = ref 0 and qspans = ref 0 and qbytes = ref 0 in
    (* Settle the log: repeatedly extend the valid prefix by repairing
       whatever stops it. Every repair is idempotent — rewriting a marker
       is byte-identical and re-zeroing zeros is a no-op — so a crash at
       any point during salvage converges on the next recovery. *)
    let rec settle pos =
      let _, stop_pos, _ = scan t pos in
      match classify t stop_pos with
      | Clean -> ()
      | Torn n ->
          zero_span t ~off:stop_pos ~len:n;
          torn := !torn + n
      | Corrupt_span span ->
          write_skip_marker t ~off:stop_pos ~span;
          incr qspans;
          qbytes := !qbytes + span;
          settle (stop_pos + span)
    in
    settle head;
    let _, tail, markers = scan t head in
    t.tail <- tail;
    if (!torn > 0 || !qspans > 0) && Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:(M.self ())
        (Onll_obs.Event.Salvage
           {
             log = t.log_name;
             quarantined = !qspans;
             bytes_lost = !torn + !qbytes;
           });
    {
      torn_tail_bytes = !torn;
      quarantined_spans = !qspans;
      quarantined_bytes = !qbytes;
      skip_markers = markers;
    }

  (* The pre-hardening recovery: truncate at the first invalid entry, no
     resync, no repair, no report. Kept as the calibration baseline the
     chaos campaign must catch silently losing interior entries. *)
  let recover_unhardened t =
    let seq, head = read_header t in
    let stop = log_end t in
    let rec loop pos =
      if pos + 16 > stop then pos
      else
        let len = Int64.to_int (M.Pm.load_int64 t.region ~off:pos) in
        if len <= 0 || pos + 16 + len > stop then pos
        else
          let stored = M.Pm.load_int64 t.region ~off:(pos + 8) in
          let payload = M.Pm.load t.region ~off:(pos + 16) ~len in
          if stored <> crc_to_int64 (entry_crc payload) then pos
          else loop (pos + 16 + len)
    in
    t.header_seq <- seq;
    t.head <- head;
    t.tail <- loop head

  let append t payload =
    let len = String.length payload in
    if len = 0 then invalid_arg "Plog.append: empty payload";
    let need = 16 + len in
    if t.tail + need > log_end t then raise Full;
    let off = t.tail in
    M.Pm.store_int64 t.region ~off (Int64.of_int len);
    M.Pm.store_int64 t.region ~off:(off + 8) (crc_to_int64 (entry_crc payload));
    M.Pm.store t.region ~off:(off + 16) payload;
    persist t ~site:"plog.append" ~off ~len:need;
    t.tail <- off + need;
    if Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:(M.self ())
        (Onll_obs.Event.Log_append { log = t.log_name; bytes = need })

  let try_append t payload =
    match append t payload with
    | () -> Ok ()
    | exception Full -> Error `Full

  let entries t =
    let es, _, _ = scan t t.head in
    List.map fst es

  let entry_count t = List.length (entries t)

  let set_head t n =
    if n < 0 then invalid_arg "Plog.set_head: negative count";
    if n > 0 then begin
      let live, tail_off, _ = scan t t.head in
      if n > List.length live then
        invalid_arg "Plog.set_head: fewer entries than requested";
      let new_head =
        if n = List.length live then tail_off
        else snd (List.nth live n)
      in
      let seq = Int64.add t.header_seq 1L in
      (* Alternate slots so a torn header write leaves the other slot
         intact. *)
      let slot = if Int64.rem seq 2L = 0L then slot_a else slot_b in
      M.Pm.store_int64 t.region ~off:slot seq;
      M.Pm.store_int64 t.region ~off:(slot + 8) (Int64.of_int new_head);
      M.Pm.store_int64 t.region ~off:(slot + 16)
        (crc_to_int64 (crc_of_int64s seq (Int64.of_int new_head)));
      persist t ~site:"plog.set_head" ~off:slot ~len:slot_bytes;
      t.header_seq <- seq;
      t.head <- new_head;
      if Onll_obs.Sink.active t.sink then
        Onll_obs.Sink.emit t.sink ~proc:(M.self ())
          (Onll_obs.Event.Log_compact { log = t.log_name; dropped = n })
    end

  let used_bytes t = t.tail - header_size
  let live_bytes t = t.tail - t.head
  let free_bytes t = log_end t - t.tail

  (* Physically move the live span to the front of the entries area,
     reclaiming the dead pre-head bytes for appends (set_head only advances
     a pointer; appends never wrap, so without this the area fills for
     good). Crash-atomic: the live bytes are first durably copied into the
     dead zone at the start of the entries area — strictly below [head], so
     the source is untouched — and only then does a two-slot header update
     switch the head to the front. A crash before the switch leaves the old
     header and the old live span intact (the partial copy sits in dead
     bytes recovery never reads). The stale old span beyond the new tail is
     zeroed last; a crash before that zeroing leaves stale CRC-valid
     records past the tail, which the next recovery either ignores (their
     content predates the checkpoint the live span starts with) or
     quarantines — both converge. *)
  let relocate t =
    let live = t.tail - t.head in
    if t.head > header_size && header_size + live <= t.head then begin
      if live > 0 then begin
        let span = M.Pm.load t.region ~off:t.head ~len:live in
        M.Pm.store t.region ~off:header_size span;
        persist t ~site:"plog.relocate" ~off:header_size ~len:live
      end;
      let seq = Int64.add t.header_seq 1L in
      let slot = if Int64.rem seq 2L = 0L then slot_a else slot_b in
      M.Pm.store_int64 t.region ~off:slot seq;
      M.Pm.store_int64 t.region ~off:(slot + 8) (Int64.of_int header_size);
      M.Pm.store_int64 t.region ~off:(slot + 16)
        (crc_to_int64 (crc_of_int64s seq (Int64.of_int header_size)));
      persist t ~site:"plog.relocate" ~off:slot ~len:slot_bytes;
      let old_tail = t.tail in
      t.header_seq <- seq;
      t.head <- header_size;
      t.tail <- header_size + live;
      let stale = old_tail - t.tail in
      if stale > 0 then begin
        M.Pm.store t.region ~off:t.tail (String.make stale '\000');
        persist t ~site:"plog.relocate" ~off:t.tail ~len:stale
      end
    end
end
