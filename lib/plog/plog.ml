open Onll_util

let header_size = 64
let slot_a = 0
let slot_b = 32
let slot_bytes = 24

(* Salvage skip markers: a 16-byte pseudo-entry [neg_span:int64
   crc32(neg_span‖magic):int64] written over the start of a quarantined
   corrupt span. Negative length distinguishes it from real entries; the
   CRC distinguishes it from garbage. Any quarantined span is >= 17 bytes
   (a real entry is 16 bytes of header plus a non-empty payload), so the
   marker always fits. *)
let skip_magic = 0x534B49504D41524BL (* "SKIPMARK" *)

(* Bounded retry budget for transiently failing flush/fence pairs. Fault
   plans cap consecutive transient failures well below this, so a durable
   operation always eventually lands. *)
let retry_budget = 8

(* Mirror replicas live in sibling regions named with a '~' separator,
   which never appears in caller-chosen log names (ONLL names its logs
   "spec.N.plog.P"). Fault plans target one side of a mirrored log by
   region name. *)
let mirror_sep = '~'

let replica_region_name name r =
  if r = 0 then name else Printf.sprintf "%s%c%d" name mirror_sep r

let is_mirror_region name = String.contains name mirror_sep

let crc_of_int64s a b =
  let buf = Bytes.create 16 in
  Bytes.set_int64_le buf 0 a;
  Bytes.set_int64_le buf 8 b;
  Crc32.bytes buf ~pos:0 ~len:16

let crc_to_int64 c = Int64.logand (Int64.of_int32 c) 0xFFFFFFFFL

exception Full

let entry_crc payload =
  let buf = Bytes.create (8 + String.length payload) in
  Bytes.set_int64_le buf 0 (Int64.of_int (String.length payload));
  Bytes.blit_string payload 0 buf 8 (String.length payload);
  Crc32.bytes buf ~pos:0 ~len:(Bytes.length buf)

type salvage_report = {
  torn_tail_bytes : int;
  quarantined_spans : int;
  quarantined_bytes : int;
  skip_markers : int;
  repaired_entries : int;
  repaired_bytes : int;
}

let clean_report =
  {
    torn_tail_bytes = 0;
    quarantined_spans = 0;
    quarantined_bytes = 0;
    skip_markers = 0;
    repaired_entries = 0;
    repaired_bytes = 0;
  }

let report_lost r = r.torn_tail_bytes + r.quarantined_bytes

let pp_salvage_report ppf r =
  Format.fprintf ppf
    "@[<h>torn_tail=%dB quarantined=%d spans (%dB) markers=%d repaired=%d \
     (%dB)@]"
    r.torn_tail_bytes r.quarantined_spans r.quarantined_bytes r.skip_markers
    r.repaired_entries r.repaired_bytes

type scrub_report = {
  scrubbed_entries : int;
  scrub_repaired_entries : int;
  scrub_repaired_bytes : int;
  unrepairable_spans : int;
}

let clean_scrub =
  {
    scrubbed_entries = 0;
    scrub_repaired_entries = 0;
    scrub_repaired_bytes = 0;
    unrepairable_spans = 0;
  }

let add_scrub a b =
  {
    scrubbed_entries = a.scrubbed_entries + b.scrubbed_entries;
    scrub_repaired_entries =
      a.scrub_repaired_entries + b.scrub_repaired_entries;
    scrub_repaired_bytes = a.scrub_repaired_bytes + b.scrub_repaired_bytes;
    unrepairable_spans = a.unrepairable_spans + b.unrepairable_spans;
  }

let pp_scrub_report ppf r =
  Format.fprintf ppf
    "@[<h>scrubbed=%d repaired=%d (%dB) unrepairable=%d@]" r.scrubbed_entries
    r.scrub_repaired_entries r.scrub_repaired_bytes r.unrepairable_spans

module Make (M : Onll_machine.Machine_sig.S) = struct
  type t = {
    regions : M.Pm.t array;  (* replica 0 is the primary *)
    log_name : string;
    log_capacity : int;  (* entries area bytes, per replica *)
    sink : Onll_obs.Sink.t;
    mutable tail : int;  (* next append offset (absolute) *)
    mutable head : int;  (* first live entry offset (absolute) *)
    mutable header_seq : int64;
    offs : int Queue.t;
        (* live-entry offsets in log order, maintained incrementally by
           [append] so [set_head] does not pay a CRC-validating scan of
           the whole live span per compaction *)
    mutable offs_valid : bool;
        (* recovery, scrubbing and relocation move or rewrite records out
           from under the account; they clear this and the next
           [set_head] rebuilds it with one scan *)
  }

  let name t = t.log_name
  let capacity t = t.log_capacity
  let replicas t = Array.length t.regions
  let log_end t = header_size + t.log_capacity
  let primary t = t.regions.(0)

  let region_names t =
    Array.to_list
      (Array.mapi (fun r _ -> replica_region_name t.log_name r) t.regions)

  let emit_retry t ~site ~attempt =
    if Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:(M.self ())
        (Onll_obs.Event.Retry { site; attempt })

  (* Make [off, off+len) durable in every replica: flush each replica's
     range, then ONE fence — pending write-backs are per process, so all
     replica flushes drain under the same persistent fence and mirroring
     never costs an extra one. Transient faults retry the whole sequence:
     a failed flush queued nothing, a failed fence left the pending set
     intact, and re-flushing re-queues snapshots of the same dirty lines,
     so the retry is idempotent. *)
  let persist t ~site ~off ~len =
    let rec go attempt =
      match
        Array.iter (fun r -> M.Pm.flush r ~off ~len) t.regions;
        M.fence ()
      with
      | () -> ()
      | exception Onll_nvm.Memory.Transient_fault _
        when attempt <= retry_budget ->
          emit_retry t ~site ~attempt;
          go (attempt + 1)
    in
    go 1

  (* Store the same bytes at [off] in every replica. *)
  let store_all t ~off s = Array.iter (fun r -> M.Pm.store r ~off s) t.regions

  let store_int64_all t ~off v =
    Array.iter (fun r -> M.Pm.store_int64 r ~off v) t.regions

  (* Read one header slot of one replica; [Some (seq, head)] if its
     checksum validates and the head is in range. *)
  let read_slot t region off =
    let seq = M.Pm.load_int64 region ~off in
    let head = M.Pm.load_int64 region ~off:(off + 8) in
    let crc = M.Pm.load_int64 region ~off:(off + 16) in
    if
      crc = crc_to_int64 (crc_of_int64s seq head)
      && head >= Int64.of_int header_size
      && head <= Int64.of_int (log_end t)
      && seq > 0L
    then Some (seq, Int64.to_int head)
    else None

  let read_header_of t region =
    match (read_slot t region slot_a, read_slot t region slot_b) with
    | None, None -> (0L, header_size)
    | Some (s, h), None | None, Some (s, h) -> (s, h)
    | Some (sa, ha), Some (sb, hb) ->
        if sa >= sb then (sa, ha) else (sb, hb)

  (* The newest valid header across every replica and both slots. *)
  let read_header t =
    Array.fold_left
      (fun ((bs, _) as best) region ->
        let s, h = read_header_of t region in
        if s > bs then (s, h) else best)
      (0L, header_size) t.regions

  (* What a replica holds at [pos]. *)
  type probe = P_entry of int  (* payload length *) | P_skip of int | P_nothing

  let probe t region pos =
    let stop = log_end t in
    if pos + 16 > stop then P_nothing
    else
      let len64 = M.Pm.load_int64 region ~off:pos in
      let len = Int64.to_int len64 in
      if len >= 1 then
        if pos + 16 + len > stop then P_nothing
        else
          let stored = M.Pm.load_int64 region ~off:(pos + 8) in
          let payload = M.Pm.load region ~off:(pos + 16) ~len in
          if stored = crc_to_int64 (entry_crc payload) then P_entry len
          else P_nothing
      else if Int64.compare len64 0L < 0 then
        let span = Int64.to_int (Int64.neg len64) in
        let stored = M.Pm.load_int64 region ~off:(pos + 8) in
        if
          stored = crc_to_int64 (crc_of_int64s len64 skip_magic)
          && span >= 16
          && pos + span <= stop
        then P_skip span
        else P_nothing
      else P_nothing

  (* Is [blob] a byte-exact valid log record (a whole entry or a whole
     skip marker)? A copy source must be revalidated on the very bytes
     about to be propagated: media rot can strike between the probe that
     validated a replica and the load of its bytes (the scrubber runs
     under ACTIVE rot), and copying an unchecked canon would spread the
     fresh damage onto the intact replicas — turning a repairable
     single-copy fault into an unrepairable all-copy one. Checking the
     loaded bytes themselves closes that window: whatever is stored is
     exactly what was checked. *)
  let valid_record blob =
    let n = String.length blob in
    if n < 16 then false
    else
      let len64 = String.get_int64_le blob 0 in
      let stored = String.get_int64_le blob 8 in
      if Int64.compare len64 0L > 0 then
        Int64.to_int len64 = n - 16
        && stored = crc_to_int64 (entry_crc (String.sub blob 16 (n - 16)))
      else
        n = 16 && stored = crc_to_int64 (crc_of_int64s len64 skip_magic)

  (* A validated record loaded from some replica: the payload length
     (resp. quarantine span) plus the canonical bytes every replica should
     hold at that offset. *)
  type record = R_entry of int * string | R_skip of int * string

  (* The record at [pos] from the first replica whose copy both probes
     valid and revalidates on the loaded bytes ([valid_record]). A source
     that fails revalidation — rot struck between probe and load — is
     passed over, not trusted and not allowed to end the search: another
     replica may still hold an intact copy, and only when none does may
     the caller fall through to quarantine/classify. Entries are checked
     before markers across every replica: an entry can never reappear
     under a marker (quarantine only happens when no replica had one), so
     preferring the entry is safe and can only resurrect real data. *)
  let load_record t pos =
    let n = Array.length t.regions in
    let rec entry r =
      if r >= n then skip 0
      else
        match probe t t.regions.(r) pos with
        | P_entry len ->
            let blob = M.Pm.load t.regions.(r) ~off:pos ~len:(16 + len) in
            if valid_record blob then Some (R_entry (len, blob))
            else entry (r + 1)
        | P_skip _ | P_nothing -> entry (r + 1)
    and skip r =
      if r >= n then None
      else
        match probe t t.regions.(r) pos with
        | P_skip span ->
            let blob = M.Pm.load t.regions.(r) ~off:pos ~len:16 in
            if valid_record blob then Some (R_skip (span, blob))
            else skip (r + 1)
        | P_entry _ | P_nothing -> skip (r + 1)
    in
    entry 0

  (* Durably propagate a record's validated canonical bytes over every
     replica that differs at [off]. Returns the number of replica ranges
     rewritten; 0 when all replicas already agree (no fence paid).
     Idempotent: re-running copies identical bytes. *)
  let heal_with t ~off canon =
    let len = String.length canon in
    let healed = ref 0 in
    Array.iter
      (fun r ->
        if M.Pm.load r ~off ~len <> canon then begin
          M.Pm.store r ~off canon;
          incr healed
        end)
      t.regions;
    if !healed > 0 then persist t ~site:"plog.repair" ~off ~len;
    !healed

  (* Re-converge replica headers on the merged (seq, head): rewrite the
     canonical slot of every replica whose slot disagrees. The replicas
     holding the merged header are never written, so the merged header
     survives a crash mid-heal; rewriting is byte-identical, hence
     idempotent. *)
  let heal_headers t ~seq ~head =
    if seq > 0L then begin
      let slot = if Int64.rem seq 2L = 0L then slot_a else slot_b in
      let dirty = ref false in
      Array.iter
        (fun r ->
          if read_slot t r slot <> Some (seq, head) then begin
            M.Pm.store_int64 r ~off:slot seq;
            M.Pm.store_int64 r ~off:(slot + 8) (Int64.of_int head);
            M.Pm.store_int64 r ~off:(slot + 16)
              (crc_to_int64 (crc_of_int64s seq (Int64.of_int head)));
            dirty := true
          end)
        t.regions;
      if !dirty then persist t ~site:"plog.repair" ~off:slot ~len:slot_bytes
    end

  (* Scan the valid entries from [head] in the primary, transparently
     stepping over valid skip markers left by salvage; returns (payload,
     offset) pairs in order, the end-of-valid-prefix offset, and the
     markers stepped over. The primary is canonical after any
     recovery/scrub, so the ordinary read path never consults mirrors. *)
  let scan t head =
    let region = primary t in
    let rec loop pos acc markers =
      match probe t region pos with
      | P_entry len ->
          let payload = M.Pm.load region ~off:(pos + 16) ~len in
          loop (pos + 16 + len) ((payload, pos) :: acc) markers
      | P_skip span -> loop (pos + span) acc (markers + 1)
      | P_nothing -> (List.rev acc, pos, markers)
    in
    loop head [] 0

  let create ?(sink = Onll_obs.Sink.null) ?(replicas = 1) ~name ~capacity ()
      =
    if capacity <= 0 then invalid_arg "Plog.create: non-positive capacity";
    if replicas < 1 then invalid_arg "Plog.create: replicas < 1";
    {
      regions =
        Array.init replicas (fun r ->
            M.Pm.create
              ~name:(replica_region_name name r)
              ~size:(header_size + capacity));
      log_name = name;
      log_capacity = capacity;
      sink;
      tail = header_size;
      head = header_size;
      header_seq = 0L;
      offs = Queue.create ();
      offs_valid = true;
    }

  (* What lies at the end of the valid prefix [pos], judged across EVERY
     replica:
     - [Clean]: zeros to the end of each replica — a well-formed log end.
     - [Torn n]: [n] bytes of garbage with no valid entry anywhere after,
       in any replica — a torn final write (every replica's tail tore,
       because no copy of the unacknowledged append was ever fenced), or
       media damage that hit all copies. Truncation loses nothing a clean
       append acknowledged; the span is zeroed everywhere.
     - [Corrupt_span span]: a CRC-valid entry (or marker) resumes [span]
       bytes further on in some replica — interior corruption with no
       intact copy of the span itself. The span is quarantined behind a
       skip marker in every replica; the entries after it survive. *)
  type tail_class = Clean | Torn of int | Corrupt_span of int

  (* Is there a whole CRC-valid record (an entry, or an earlier salvage's
     skip marker — equally good as a resync point) at offset [r] of the
     buffered span copy [rest]? The resync searches work over ONE bulk
     load per replica rather than per-byte [Pm] probes: every durable
     load ticks the fault hooks, so a byte-wise probe of a long corrupt
     span would itself accelerate rot injection mid-scan. *)
  let buffer_valid_at rest r =
    let n = String.length rest in
    if r + 16 > n then false
    else
      let len64 = String.get_int64_le rest r in
      let len = Int64.to_int len64 in
      if len >= 1 then
        r + 16 + len <= n
        && String.get_int64_le rest (r + 8)
           = crc_to_int64 (entry_crc (String.sub rest (r + 16) len))
      else if Int64.compare len64 0L < 0 then
        let span = Int64.to_int (Int64.neg len64) in
        span >= 16
        && r + span <= n
        && String.get_int64_le rest (r + 8)
           = crc_to_int64 (crc_of_int64s len64 skip_magic)
      else false

  let classify t pos =
    let stop = log_end t in
    if pos >= stop then Clean
    else begin
      let rests =
        Array.map (fun r -> M.Pm.load r ~off:pos ~len:(stop - pos)) t.regions
      in
      (* Last nonzero byte (across replicas) bounds the search: an entry
         has a nonzero length field, so none can start in the all-zero
         suffix. *)
      let last_nz = ref (-1) in
      Array.iter
        (fun rest ->
          String.iteri
            (fun i c -> if c <> '\000' then last_nz := max !last_nz i)
            rest)
        rests;
      if !last_nz < 0 then Clean
      else begin
        (* Resync search. The corrupted entry at [pos] originally occupied
           >= 17 bytes, so the next real boundary is at pos+17 or later —
           which also guarantees a quarantined span can hold the 16-byte
           marker. *)
        let resync = ref None in
        let r = ref 17 in
        while !resync = None && !r <= !last_nz do
          if Array.exists (fun rest -> buffer_valid_at rest !r) rests then
            resync := Some !r;
          incr r
        done;
        match !resync with
        | Some r -> Corrupt_span r
        | None -> Torn (!last_nz + 1)
      end
    end

  (* The next offset in (pos, stop) at which some replica holds a whole
     CRC-valid record — the resync point bounding a span corrupt in every
     replica — or [None] if no record revalidates before [stop]. Searches
     buffered copies, one bulk load per replica (see [buffer_valid_at]).
     The corrupted record at [pos] originally occupied >= 17 bytes, so
     the search starts at pos+17 — which also guarantees the quarantined
     span can hold the 16-byte skip marker. *)
  let resync_offset t ~pos ~stop =
    let rests =
      Array.map (fun r -> M.Pm.load r ~off:pos ~len:(stop - pos)) t.regions
    in
    let n = stop - pos in
    let found = ref None in
    let r = ref 17 in
    while !found = None && !r + 16 <= n do
      if Array.exists (fun rest -> buffer_valid_at rest !r) rests then
        found := Some (pos + !r);
      incr r
    done;
    !found

  let write_skip_marker t ~off ~span =
    let len64 = Int64.neg (Int64.of_int span) in
    store_int64_all t ~off len64;
    store_int64_all t ~off:(off + 8)
      (crc_to_int64 (crc_of_int64s len64 skip_magic));
    persist t ~site:"plog.salvage" ~off ~len:16

  let zero_span t ~off ~len =
    store_all t ~off (String.make len '\000');
    persist t ~site:"plog.salvage" ~off ~len

  let recover t =
    let seq, head = read_header t in
    heal_headers t ~seq ~head;
    t.header_seq <- seq;
    t.head <- head;
    t.offs_valid <- false;
    let torn = ref 0 and qspans = ref 0 and qbytes = ref 0 in
    let repaired = ref 0 and rep_bytes = ref 0 in
    let markers = ref 0 in
    (* Settle the log: walk the entries, healing replica divergence from
       any copy that revalidates on load, quarantining spans corrupt
       everywhere, truncating a tail no replica can vouch for. A record
       whose every replica fails revalidation falls through to
       classify/quarantine — the walk never advances past an offset it
       could neither vouch for nor heal, so the primary is always either
       intact or the span is named as lost. Every repair is idempotent —
       healing copies CRC-valid canonical bytes, rewriting a marker is
       byte-identical and re-zeroing zeros is a no-op — so a crash at any
       point during salvage converges on the next recovery. *)
    let stop = log_end t in
    let rec walk pos =
      if pos + 16 > stop then pos
      else
        match load_record t pos with
        | Some (R_entry (len, canon)) ->
            let healed = heal_with t ~off:pos canon in
            if healed > 0 then begin
              repaired := !repaired + healed;
              rep_bytes := !rep_bytes + (healed * (16 + len))
            end;
            walk (pos + 16 + len)
        | Some (R_skip (span, canon)) ->
            (* propagate the marker (not counted as a data repair) *)
            ignore (heal_with t ~off:pos canon);
            incr markers;
            walk (pos + span)
        | None -> (
            match classify t pos with
            | Clean -> pos
            | Torn n ->
                zero_span t ~off:pos ~len:n;
                torn := !torn + n;
                pos
            | Corrupt_span span ->
                write_skip_marker t ~off:pos ~span;
                incr qspans;
                incr markers;
                qbytes := !qbytes + span;
                walk (pos + span))
    in
    t.tail <- walk head;
    if Onll_obs.Sink.active t.sink then begin
      if !torn > 0 || !qspans > 0 then
        Onll_obs.Sink.emit t.sink ~proc:(M.self ())
          (Onll_obs.Event.Salvage
             {
               log = t.log_name;
               quarantined = !qspans;
               bytes_lost = !torn + !qbytes;
             });
      if !repaired > 0 then
        Onll_obs.Sink.emit t.sink ~proc:(M.self ())
          (Onll_obs.Event.Repair
             { log = t.log_name; entries = !repaired; bytes = !rep_bytes })
    end;
    {
      torn_tail_bytes = !torn;
      quarantined_spans = !qspans;
      quarantined_bytes = !qbytes;
      skip_markers = !markers;
      repaired_entries = !repaired;
      repaired_bytes = !rep_bytes;
    }

  (* The pre-hardening recovery: truncate the primary at the first invalid
     entry — no resync, no mirror consultation, no repair, no report. Kept
     as the calibration baseline the chaos campaigns must catch silently
     losing interior entries. *)
  let recover_unhardened t =
    let region = primary t in
    let seq, head = read_header_of t region in
    let stop = log_end t in
    let rec loop pos =
      if pos + 16 > stop then pos
      else
        let len = Int64.to_int (M.Pm.load_int64 region ~off:pos) in
        if len <= 0 || pos + 16 + len > stop then pos
        else
          let stored = M.Pm.load_int64 region ~off:(pos + 8) in
          let payload = M.Pm.load region ~off:(pos + 16) ~len in
          if stored <> crc_to_int64 (entry_crc payload) then pos
          else loop (pos + 16 + len)
    in
    t.header_seq <- seq;
    t.head <- head;
    t.tail <- loop head;
    t.offs_valid <- false

  (* Online self-healing: CRC-walk the live span [head, tail) across all
     replicas while the log is in use — the in-memory cursors are
     authoritative, so unlike recovery the walk knows exactly where the
     acknowledged entries end. Divergence with an intact copy is healed in
     place; a span corrupt in every replica is quarantined immediately
     (the data is already gone from the media — naming it now beats
     letting a later crash find it). Fences are paid only for actual
     repairs. *)
  let scrub t =
    heal_headers t ~seq:t.header_seq ~head:t.head;
    (* quarantine can rewrite record boundaries in place *)
    t.offs_valid <- false;
    let scrubbed = ref 0 and repaired = ref 0 and rep_bytes = ref 0 in
    let unrep = ref 0 in
    let rec walk pos =
      if pos >= t.tail then ()
      else
        match load_record t pos with
        | Some (R_entry (len, canon)) ->
            incr scrubbed;
            let healed = heal_with t ~off:pos canon in
            if healed > 0 then begin
              repaired := !repaired + healed;
              rep_bytes := !rep_bytes + (healed * (16 + len))
            end;
            walk (pos + 16 + len)
        | Some (R_skip (span, canon)) ->
            ignore (heal_with t ~off:pos canon);
            walk (pos + span)
        | None ->
            (* Corrupt in every replica: resync at the next offset some
               replica holds a valid record (bounded by the live tail),
               else the rest of the live span is gone. Either way the span
               is >= 17 bytes (whole entries), so the marker fits. *)
            let upto =
              match resync_offset t ~pos ~stop:t.tail with
              | Some r -> r
              | None -> t.tail
            in
            write_skip_marker t ~off:pos ~span:(upto - pos);
            incr unrep;
            walk upto
    in
    walk t.head;
    if Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:(M.self ())
        (Onll_obs.Event.Scrub
           {
             log = t.log_name;
             entries = !scrubbed;
             repaired = !repaired;
             unrepairable = !unrep;
           });
    {
      scrubbed_entries = !scrubbed;
      scrub_repaired_entries = !repaired;
      scrub_repaired_bytes = !rep_bytes;
      unrepairable_spans = !unrep;
    }

  let append t payload =
    let len = String.length payload in
    if len = 0 then invalid_arg "Plog.append: empty payload";
    let need = 16 + len in
    if t.tail + need > log_end t then raise Full;
    let off = t.tail in
    store_int64_all t ~off (Int64.of_int len);
    store_int64_all t ~off:(off + 8) (crc_to_int64 (entry_crc payload));
    store_all t ~off:(off + 16) payload;
    persist t ~site:"plog.append" ~off ~len:need;
    t.tail <- off + need;
    if t.offs_valid then Queue.push off t.offs;
    if Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:(M.self ())
        (Onll_obs.Event.Log_append { log = t.log_name; bytes = need })

  let try_append t payload =
    match append t payload with
    | () -> Ok ()
    | exception Full -> Error `Full

  let entries t =
    let es, _, _ = scan t t.head in
    List.map fst es

  let entry_count t = List.length (entries t)

  let advance_head t ~new_head ~dropped =
    let seq = Int64.add t.header_seq 1L in
    (* Alternate slots so a torn header write leaves the other slot
       intact. *)
    let slot = if Int64.rem seq 2L = 0L then slot_a else slot_b in
    store_int64_all t ~off:slot seq;
    store_int64_all t ~off:(slot + 8) (Int64.of_int new_head);
    store_int64_all t ~off:(slot + 16)
      (crc_to_int64 (crc_of_int64s seq (Int64.of_int new_head)));
    persist t ~site:"plog.set_head" ~off:slot ~len:slot_bytes;
    t.header_seq <- seq;
    t.head <- new_head;
    if Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:(M.self ())
        (Onll_obs.Event.Log_compact { log = t.log_name; dropped })

  let set_head t n =
    if n < 0 then invalid_arg "Plog.set_head: negative count";
    if n > 0 then begin
      if not t.offs_valid then begin
        (* Rebuild the account with one scan — unless the valid prefix
           stops short of the tail (unrepaired mid-log damage), in which
           case offsets beyond the damage are unreachable by a scan and
           the account cannot represent the log. *)
        let live, tail_off, _ = scan t t.head in
        Queue.clear t.offs;
        List.iter (fun (_, off) -> Queue.push off t.offs) live;
        t.offs_valid <- tail_off = t.tail
      end;
      if t.offs_valid then begin
        if n > Queue.length t.offs then
          invalid_arg "Plog.set_head: fewer entries than requested";
        for _ = 1 to n do ignore (Queue.pop t.offs) done;
        advance_head t
          ~new_head:
            (if Queue.is_empty t.offs then t.tail else Queue.peek t.offs)
          ~dropped:n
      end
      else begin
        let live, tail_off, _ = scan t t.head in
        if n > List.length live then
          invalid_arg "Plog.set_head: fewer entries than requested";
        let new_head =
          if n = List.length live then tail_off else snd (List.nth live n)
        in
        advance_head t ~new_head ~dropped:n
      end
    end

  let used_bytes t = t.tail - header_size
  let live_bytes t = t.tail - t.head
  let free_bytes t = log_end t - t.tail

  (* Physically move the live span to the front of the entries area,
     reclaiming the dead pre-head bytes for appends (set_head only advances
     a pointer; appends never wrap, so without this the area fills for
     good). The copy walks the live span record by record, sourcing each
     record from whichever replica's copy revalidates on load
     ([load_record]) — a bulk primary-only copy would propagate a rotted
     primary record onto every mirror while the zeroing below destroys the
     mirrors' intact copy at the old offsets, converting a repairable
     single-replica fault into unrepairable loss. A span corrupt in every
     replica is rewritten at the destination as a skip marker — exactly
     the quarantine an in-place scrub would perform — and reported with a
     Salvage event. Every byte landing at the destination was therefore
     validated (or is a fresh CRC-protected marker) at copy time, so the
     old span is dead weight by the time it is zeroed.

     Crash-atomic: the live records are first durably copied into the dead
     zone at the start of the entries area — strictly below [head], so the
     source is untouched — and only then does a two-slot header update
     switch the head to the front. A crash before the switch leaves the
     old header and the old live span intact (the partial copy sits in
     dead bytes recovery never reads); replicas that diverge mid-copy or
     mid-switch re-converge on the next recovery's header heal and entry
     walk. The stale old span beyond the new tail is zeroed last; a crash
     before that zeroing leaves stale CRC-valid records past the tail,
     which the next recovery either ignores (their content predates the
     checkpoint the live span starts with) or quarantines — both
     converge. *)
  let relocate t =
    let live = t.tail - t.head in
    if t.head > header_size && header_size + live <= t.head then begin
      let quarantined = ref 0 and qbytes = ref 0 in
      if live > 0 then begin
        let rec copy pos =
          if pos >= t.tail then ()
          else
            let dst = header_size + (pos - t.head) in
            match load_record t pos with
            | Some (R_entry (len, canon)) ->
                store_all t ~off:dst canon;
                copy (pos + 16 + len)
            | Some (R_skip (span, canon)) ->
                (* the marker's span is relative, so it covers the same
                   bytes at the destination *)
                store_all t ~off:dst canon;
                copy (pos + span)
            | None ->
                let upto =
                  match resync_offset t ~pos ~stop:t.tail with
                  | Some r -> r
                  | None -> t.tail
                in
                let span = upto - pos in
                let len64 = Int64.neg (Int64.of_int span) in
                store_int64_all t ~off:dst len64;
                store_int64_all t ~off:(dst + 8)
                  (crc_to_int64 (crc_of_int64s len64 skip_magic));
                incr quarantined;
                qbytes := !qbytes + span;
                copy upto
        in
        copy t.head;
        persist t ~site:"plog.relocate" ~off:header_size ~len:live
      end;
      let seq = Int64.add t.header_seq 1L in
      let slot = if Int64.rem seq 2L = 0L then slot_a else slot_b in
      store_int64_all t ~off:slot seq;
      store_int64_all t ~off:(slot + 8) (Int64.of_int header_size);
      store_int64_all t ~off:(slot + 16)
        (crc_to_int64 (crc_of_int64s seq (Int64.of_int header_size)));
      persist t ~site:"plog.relocate" ~off:slot ~len:slot_bytes;
      let old_tail = t.tail in
      t.header_seq <- seq;
      t.head <- header_size;
      t.tail <- header_size + live;
      t.offs_valid <- false;
      let stale = old_tail - t.tail in
      if stale > 0 then begin
        store_all t ~off:t.tail (String.make stale '\000');
        persist t ~site:"plog.relocate" ~off:t.tail ~len:stale
      end;
      if !quarantined > 0 && Onll_obs.Sink.active t.sink then
        Onll_obs.Sink.emit t.sink ~proc:(M.self ())
          (Onll_obs.Event.Salvage
             {
               log = t.log_name;
               quarantined = !quarantined;
               bytes_lost = !qbytes;
             })
    end
end
