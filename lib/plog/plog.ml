open Onll_util

let header_size = 64
let slot_a = 0
let slot_b = 32
let slot_bytes = 24

let crc_of_int64s a b =
  let buf = Bytes.create 16 in
  Bytes.set_int64_le buf 0 a;
  Bytes.set_int64_le buf 8 b;
  Crc32.bytes buf ~pos:0 ~len:16

let crc_to_int64 c = Int64.logand (Int64.of_int32 c) 0xFFFFFFFFL

exception Full

let entry_crc payload =
  let buf = Bytes.create (8 + String.length payload) in
  Bytes.set_int64_le buf 0 (Int64.of_int (String.length payload));
  Bytes.blit_string payload 0 buf 8 (String.length payload);
  Crc32.bytes buf ~pos:0 ~len:(Bytes.length buf)

module Make (M : Onll_machine.Machine_sig.S) = struct
  type t = {
    region : M.Pm.t;
    log_name : string;
    log_capacity : int;  (* entries area bytes *)
    sink : Onll_obs.Sink.t;
    mutable tail : int;  (* next append offset (absolute) *)
    mutable head : int;  (* first live entry offset (absolute) *)
    mutable header_seq : int64;
  }

  let name t = t.log_name
  let capacity t = t.log_capacity
  let log_end t = header_size + t.log_capacity

  (* Read one header slot; [Some (seq, head)] if its checksum validates and
     the head is in range. *)
  let read_slot t off =
    let seq = M.Pm.load_int64 t.region ~off in
    let head = M.Pm.load_int64 t.region ~off:(off + 8) in
    let crc = M.Pm.load_int64 t.region ~off:(off + 16) in
    if
      crc = crc_to_int64 (crc_of_int64s seq head)
      && head >= Int64.of_int header_size
      && head <= Int64.of_int (log_end t)
      && seq > 0L
    then Some (seq, Int64.to_int head)
    else None

  let read_header t =
    match (read_slot t slot_a, read_slot t slot_b) with
    | None, None -> (0L, header_size)
    | Some (s, h), None | None, Some (s, h) -> (s, h)
    | Some (sa, ha), Some (sb, hb) ->
        if sa >= sb then (sa, ha) else (sb, hb)

  (* Scan the valid entries from [head]; returns (payload, offset) pairs in
     order plus the end-of-valid-prefix offset. *)
  let scan t head =
    let stop = log_end t in
    let rec loop pos acc =
      if pos + 16 > stop then (List.rev acc, pos)
      else
        let len64 = M.Pm.load_int64 t.region ~off:pos in
        let len = Int64.to_int len64 in
        if len <= 0 || pos + 16 + len > stop then (List.rev acc, pos)
        else
          let stored = M.Pm.load_int64 t.region ~off:(pos + 8) in
          let payload = M.Pm.load t.region ~off:(pos + 16) ~len in
          if stored <> crc_to_int64 (entry_crc payload) then
            (List.rev acc, pos)
          else loop (pos + 16 + len) ((payload, pos) :: acc)
    in
    loop head []

  let create ?(sink = Onll_obs.Sink.null) ~name ~capacity () =
    if capacity <= 0 then invalid_arg "Plog.create: non-positive capacity";
    let region = M.Pm.create ~name ~size:(header_size + capacity) in
    {
      region;
      log_name = name;
      log_capacity = capacity;
      sink;
      tail = header_size;
      head = header_size;
      header_seq = 0L;
    }

  let recover t =
    let seq, head = read_header t in
    let _, tail = scan t head in
    t.header_seq <- seq;
    t.head <- head;
    t.tail <- tail

  let append t payload =
    let len = String.length payload in
    if len = 0 then invalid_arg "Plog.append: empty payload";
    let need = 16 + len in
    if t.tail + need > log_end t then raise Full;
    let off = t.tail in
    M.Pm.store_int64 t.region ~off (Int64.of_int len);
    M.Pm.store_int64 t.region ~off:(off + 8) (crc_to_int64 (entry_crc payload));
    M.Pm.store t.region ~off:(off + 16) payload;
    M.Pm.flush t.region ~off ~len:need;
    M.fence ();
    t.tail <- off + need;
    if Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:(M.self ())
        (Onll_obs.Event.Log_append { log = t.log_name; bytes = need })

  let entries t = List.map fst (fst (scan t t.head))

  let entry_count t = List.length (entries t)

  let set_head t n =
    if n < 0 then invalid_arg "Plog.set_head: negative count";
    if n > 0 then begin
      let live, tail_off = scan t t.head in
      if n > List.length live then
        invalid_arg "Plog.set_head: fewer entries than requested";
      let new_head =
        if n = List.length live then tail_off
        else snd (List.nth live n)
      in
      let seq = Int64.add t.header_seq 1L in
      (* Alternate slots so a torn header write leaves the other slot
         intact. *)
      let slot = if Int64.rem seq 2L = 0L then slot_a else slot_b in
      M.Pm.store_int64 t.region ~off:slot seq;
      M.Pm.store_int64 t.region ~off:(slot + 8) (Int64.of_int new_head);
      M.Pm.store_int64 t.region ~off:(slot + 16)
        (crc_to_int64 (crc_of_int64s seq (Int64.of_int new_head)));
      M.Pm.flush t.region ~off:slot ~len:slot_bytes;
      M.fence ();
      t.header_seq <- seq;
      t.head <- new_head;
      if Onll_obs.Sink.active t.sink then
        Onll_obs.Sink.emit t.sink ~proc:(M.self ())
          (Onll_obs.Event.Log_compact { log = t.log_name; dropped = n })
    end

  let used_bytes t = t.tail - header_size
  let live_bytes t = t.tail - t.head
end
