(** The §3.1 case analysis, executed.

    The paper derives ONLL's design from a contradiction: suppose an
    update's linearization point is {e not} after its write to NVM. Then a
    reader may observe the update before it is durable, and one of three
    bad things must happen — the reader's response becomes unrecoverable,
    the reader waits (losing lock-freedom), or the reader helps persist
    (losing fence-free reads). This module runs all three branches against
    real implementations of each choice, plus ONLL's escape, under the same
    scripted schedule — updater parked right before its persistent fence,
    reader runs, crash (drop-all), recover — and reports what each design
    did. The oracle-facing versions of these runs (with full history
    checking) live in [test/test_oracle.ml] and [test/test_baselines.ml]. *)

open Onll_machine
open Onll_sched
module Cs = Onll_specs.Counter

type branch_result = {
  b_name : string;
  b_story : string;
  b_reader_saw : int option;  (** [None]: the reader never returned *)
  b_recovered : int;
  b_verdict : string;
}

let bad_window_script () =
  [
    Sched.Strategy.run_until_pfence 0;  (* updater parked, pre-fence *)
    Sched.Strategy.Run_to_completion 1;  (* reader *)
    Sched.Strategy.Crash_here;
  ]

(* Run the scripted window; the closures must all operate on an object
   living on [sim]. *)
let branch ~name ~story ~sim ~(update : unit -> int) ~(read : unit -> int)
    ~(recover : unit -> unit) =
  let reader_saw = ref None in
  let procs =
    [|
      (fun _ -> ignore (update ()));
      (fun _ -> reader_saw := Some (read ()));
    |]
  in
  let outcome =
    match
      Sim.run ~max_steps:20_000 sim
        (Sched.Strategy.script (bad_window_script ()))
        procs
    with
    | o -> `Outcome o
    | exception Sched.Stuck _ -> `Livelock
  in
  (* A livelocked run never reaches the scripted crash; crash manually so
     every branch is compared post-recovery. *)
  (match outcome with
  | `Livelock ->
      Onll_nvm.Memory.crash (Sim.memory sim)
        ~policy:Onll_nvm.Crash_policy.Drop_all
  | `Outcome _ -> ());
  recover ();
  let recovered = read () in
  let verdict =
    match (!reader_saw, outcome) with
    | Some seen, _ when seen > recovered ->
        "DURABILITY VIOLATION: the reader observed an update the crash \
         erased"
    | None, `Livelock ->
        "LIVELOCK: the reader waited forever behind the stalled updater \
         (lock-freedom lost)"
    | Some _, _ -> "consistent: the reader's observation survived"
    | None, `Outcome _ -> "reader cut by the crash before responding"
  in
  { b_name = name; b_story = story; b_reader_saw = !reader_saw;
    b_recovered = recovered; b_verdict = verdict }

let run_all () =
  let b1 =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module B = Onll_baselines.Broken_early.Make (M) (Cs) in
    let obj = B.create () in
    branch ~name:"branch 1: reader just returns"
      ~story:
        "linearize early; the reader neither waits nor helps (Broken_early)"
      ~sim
      ~update:(fun () -> B.update obj Cs.Increment)
      ~read:(fun () -> B.read obj Cs.Get)
      ~recover:(fun () -> B.recover obj)
  in
  let b2 =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module W = Onll_baselines.Wait_on_read.Make (M) (Cs) in
    let obj = W.create () in
    branch ~name:"branch 2: reader waits"
      ~story:
        "linearize early; the reader spins until its observation is \
         durable (Wait_on_read)"
      ~sim
      ~update:(fun () -> W.update obj Cs.Increment)
      ~read:(fun () -> W.read obj Cs.Get)
      ~recover:(fun () -> W.recover obj)
  in
  let b3 =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module P = Onll_baselines.Persist_on_read.Make (M) (Cs) in
    let obj = P.create () in
    branch ~name:"branch 3: reader helps"
      ~story:
        "linearize early; the reader persists its observation before \
         returning (Persist_on_read) — correct, but reads pay fences"
      ~sim
      ~update:(fun () -> P.update obj Cs.Increment)
      ~read:(fun () -> P.read obj Cs.Get)
      ~recover:(fun () -> P.recover obj)
  in
  let escape =
    let sim = Sim.create ~max_processes:2 () in
    let module M = (val Sim.machine sim) in
    let module C = Onll_core.Onll.Make (M) (Cs) in
    let obj = C.make Onll_core.Onll.Config.default in
    branch ~name:"onll: linearize after persist"
      ~story:
        "the unpersisted update is simply not visible yet; the reader sees \
         the previous state, nothing waits, no read ever fences"
      ~sim
      ~update:(fun () -> C.update obj Cs.Increment)
      ~read:(fun () -> C.read obj Cs.Get)
      ~recover:(fun () -> C.recover obj)
  in
  [ b1; b2; b3; escape ]

let print_all () =
  Format.printf
    "@.== §3.1: what can happen when an update is visible before it is \
     durable ==@.@.";
  Format.printf
    "schedule: updater parked just before its persistent fence; a reader \
     runs; full-system crash (drop-all); recovery.@.@.";
  List.iter
    (fun r ->
      Format.printf "%s@.  %s@." r.b_name r.b_story;
      (match r.b_reader_saw with
      | Some v -> Format.printf "  reader returned %d" v
      | None -> Format.printf "  reader never returned");
      Format.printf "; recovered value %d@." r.b_recovered;
      Format.printf "  => %s@.@." r.b_verdict)
    (run_all ())
