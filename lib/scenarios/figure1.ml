open Onll_machine
open Onll_sched
module Cs = Onll_specs.Counter

type execution1 = {
  e1_update_returned : int;
  e1_read_returned : int;
  e1_trace : (int * bool) list;
}

type execution2 = {
  e2_r1 : int;
  e2_r2 : int;
  e2_update_returned : int;
}

type execution3 = {
  e3_p2_returned : int;
  e3_p2_log_ops : int;
  e3_reader_after_p2 : int;
  e3_p1_returned : int;
}

type execution4 = {
  e4_reader_during : int;
  e4_recovered_value : int;
  e4_p1_linearized : bool;
  e4_p2_linearized : bool;
  e4_p3_linearized : bool;
}

let execution1 () =
  let sim = Sim.create ~max_processes:1 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let upd = ref 0 and rd = ref 0 in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [|
         (fun _ ->
           upd := C.update obj Cs.Increment;
           rd := C.read obj Cs.Get);
       |]);
  {
    e1_update_returned = !upd;
    e1_read_returned = !rd;
    e1_trace = List.map (fun (i, a, _) -> (i, a)) (C.trace_nodes obj);
  }

(* Park an updater right after its log append's persistent fence but before
   it sets the available flag: run it to just before the fence, execute the
   fence, leaving it paused at the next primitive (the flag store). *)
let park_after_persist p =
  [ Sched.Strategy.run_until_pfence p; Sched.Strategy.Run_steps (p, 1) ]

let execution2 () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  (* Figure: the counter starts at 1 (node n1 already in the trace). *)
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [| (fun _ -> ignore (C.update obj Cs.Increment)) |]);
  let upd = ref 0 and r1 = ref (-1) and r2 = ref (-1) in
  let procs =
    [|
      (fun _ -> upd := C.update obj Cs.Increment);
      (fun _ -> r1 := C.read obj Cs.Get);
      (fun _ -> r2 := C.read obj Cs.Get);
    |]
  in
  let script =
    park_after_persist 0
    @ [
        Sched.Strategy.Run_to_completion 1;  (* r1: flag unset, sees n1 *)
        Sched.Strategy.Run_steps (0, 1);  (* the available flag is set *)
        Sched.Strategy.Run_to_completion 2;  (* r2: sees n2 *)
        Sched.Strategy.Run_to_completion 0;
      ]
  in
  ignore (Sim.run sim (Sched.Strategy.script script) procs);
  { e2_r1 = !r1; e2_r2 = !r2; e2_update_returned = !upd }

let execution3 () =
  let sim = Sim.create ~max_processes:3 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  ignore
    (Sim.run sim Sched.Strategy.round_robin
       [| (fun _ -> ignore (C.update obj Cs.Increment)) |]);
  let p1 = ref 0 and p2 = ref 0 and reader = ref (-1) in
  let procs =
    [|
      (fun _ -> p1 := C.update obj Cs.Increment);
      (fun _ -> p2 := C.update obj Cs.Increment);
      (fun _ -> reader := C.read obj Cs.Get);
    |]
  in
  let script =
    park_after_persist 0  (* paper's p1: persisted n2, flag unset *)
    @ [
        Sched.Strategy.Run_to_completion 1;  (* paper's p2: helps persist n2 *)
        Sched.Strategy.Run_to_completion 2;  (* reader: n3 available -> 3 *)
        Sched.Strategy.Run_to_completion 0;  (* p1 finishes: returns 2 *)
      ]
  in
  ignore (Sim.run sim (Sched.Strategy.script script) procs);
  (* p2's (process 1's) single log entry covers both fuzzy operations. *)
  let p2_ops =
    match (List.nth (C.snapshot obj).Onll_core.Onll.Snapshot.logs 1).Onll_core.Onll.Snapshot.ops_per_entry with [ n ] -> n | _ -> -1
  in
  {
    e3_p2_returned = !p2;
    e3_p2_log_ops = p2_ops;
    e3_reader_after_p2 = !reader;
    e3_p1_returned = !p1;
  }

let execution4 () =
  let sim = Sim.create ~max_processes:4 () in
  let module M = (val Sim.machine sim) in
  let module C = Onll_core.Onll.Make (M) (Cs) in
  let obj = C.make Onll_core.Onll.Config.default in
  let reader = ref (-1) in
  let procs =
    [|
      (fun _ -> ignore (C.update obj Cs.Increment));
      (fun _ -> ignore (C.update obj Cs.Increment));
      (fun _ -> ignore (C.update obj Cs.Increment));
      (fun _ -> reader := C.read obj Cs.Get);
    |]
  in
  let script =
    [
      (* paper's p1: insert n1, park before touching the log *)
      Sched.Strategy.Run_until (0, fun l -> l = Sched.Prim "pm.store64");
    ]
    @ park_after_persist 1
      (* paper's p2: entry {n2, n1} durable, flag unset *)
    @ [
        (* paper's p3: entry {n3, n2, n1} written but never fenced *)
        Sched.Strategy.run_until_pfence 2;
        (* a concurrent reader: no flag is set, it sees the initial state *)
        Sched.Strategy.Run_to_completion 3;
        Sched.Strategy.Crash_here;
      ]
  in
  let outcome = Sim.run sim (Sched.Strategy.script script) procs in
  assert (outcome = Sched.World.Crashed);
  C.recover obj;
  let lin p = C.was_linearized obj { Onll_core.Onll.id_proc = p; id_seq = 0 } in
  {
    e4_reader_during = !reader;
    e4_recovered_value = C.read obj Cs.Get;
    e4_p1_linearized = lin 0;
    e4_p2_linearized = lin 1;
    e4_p3_linearized = lin 2;
  }

let print_all () =
  let say fmt = Format.printf fmt in
  let e1 = execution1 () in
  say "@.== Figure 1, execution 1: sequential update and read ==@.";
  say "update returned %d (expected 1); read returned %d (expected 1)@."
    e1.e1_update_returned e1.e1_read_returned;
  say "trace (idx, available): %s@."
    (String.concat " "
       (List.map (fun (i, a) -> Printf.sprintf "(%d,%b)" i a) e1.e1_trace));
  let e2 = execution2 () in
  say "@.== Figure 1, execution 2: update concurrent with two readers ==@.";
  say "r1 (before flag) returned %d (expected 1)@." e2.e2_r1;
  say "r2 (after flag) returned %d (expected 2)@." e2.e2_r2;
  say "update returned %d (expected 2)@." e2.e2_update_returned;
  let e3 = execution3 () in
  say "@.== Figure 1, execution 3: update helping another update ==@.";
  say "p2 returned %d (expected 3); its log entry persisted %d ops \
       (expected 2: helped p1)@."
    e3.e3_p2_returned e3.e3_p2_log_ops;
  say "reader returned %d (expected 3, though n2's flag is unset)@."
    e3.e3_reader_after_p2;
  say "p1 finally returned %d (expected 2)@." e3.e3_p1_returned;
  let e4 = execution4 () in
  say "@.== Figure 1, execution 4: crash concurrent with updates ==@.";
  say "concurrent reader returned %d (expected 0: nothing available)@."
    e4.e4_reader_during;
  say "recovered value %d (expected 2: p1 and p2 via p2's log; p3 lost)@."
    e4.e4_recovered_value;
  say "linearized: p1=%b p2=%b p3=%b (expected true true false)@."
    e4.e4_p1_linearized e4.e4_p2_linearized e4.e4_p3_linearized
