(** What the universal construction needs from an execution trace.

    Two implementations exist: the paper's lock-free tail-linked structure
    (Listing 2, {!Trace} via {!Trace_adapter.Backward}) and a wait-free
    variant in the Kogan–Petrank style ({!Wf_trace}), realising the §8
    remark that the trace is the only non-wait-free component and can be
    swapped for a wait-free one without touching the fence argument. *)

exception Unsupported of string
(** Raised by optional operations an implementation does not provide
    (e.g. pruning on the wait-free trace). *)

module type S = sig
  type ('env, 'state) t
  type ('env, 'state) node

  val create :
    ?sink:Onll_obs.Sink.t ->
    base_idx:int ->
    base_state:'state ->
    unit ->
    ('env, 'state) t
  (** [sink] (default {!Onll_obs.Sink.null}) receives [Cas_retry] events
      (and, on helping traces, [Help] events). *)

  val insert : ('env, 'state) t -> 'env -> ('env, 'state) node
  (** Append an operation, assigning it the next execution index. *)

  val idx : ('env, 'state) node -> int
  (** Only meaningful for nodes the caller inserted or that were observed
      available. *)

  val is_available : ('env, 'state) node -> bool
  val set_available : ('env, 'state) node -> unit

  val latest_available : ('env, 'state) t -> ('env, 'state) node

  val fuzzy_envs : ('env, 'state) t -> ('env, 'state) node -> 'env list
  (** [node]'s envelope plus the not-yet-available operations preceding it,
      newest first, with contiguous descending execution indices. *)

  val delta_from :
    ?floor:('env, 'state) node * 'state ->
    ('env, 'state) t ->
    ('env, 'state) node ->
    'state * (int * 'env) list
  (** Starting state and the (index, envelope) list — oldest first — whose
      application yields the state at [node] inclusive. [floor] is a
      previously observed {e available} node with its known state; an
      unusable floor (newer than [node]) is ignored. *)

  val to_list : ('env, 'state) t -> (int * bool * 'env option) list
  (** All reachable nodes, oldest first, for tests and recovery checks. *)

  val base_of : ('env, 'state) t -> int * 'state

  val prune :
    ('env, 'state) t ->
    below:int ->
    state_before:(('env, 'state) node -> 'state) ->
    unit
  (** Reclaim nodes with index < [below] (§8). May raise {!Unsupported}. *)
end
