(** Wait-free execution trace, after Kogan & Petrank (PPoPP'11).

    The paper's §8 observes that the only non-wait-free component of ONLL
    is the transient execution trace and that a wait-free queue construction
    yields a wait-free ONLL. This module is that trace: a forward-linked
    Michael–Scott structure whose insertion uses phase-numbered
    announcements with helping — every insert completes within a bounded
    number of the {e caller's} own steps, because any process that finishes
    an insertion first helps all announced insertions with lower-or-equal
    phases.

    Differences from the backward trace dictated by wait-freedom:
    {ul
    {- links point {e forward} (insertion is a CAS on the last node's [next]
       from [Null], which helpers can perform for a stalled announcer
       without the write-after-publication races a backward [next] would
       need);}
    {- traversals therefore start from an older {e available} node and walk
       forward. The trace keeps a per-process cursor (the newest available
       node that process has seen) so steady-state scans cover only the
       delta; execution indices are recomputed while walking, because a
       node's stored index is only guaranteed once the node is available
       (or owned by the caller);}
    {- pruning is not supported ({!Trace_intf.Unsupported}) — combining
       Kogan–Petrank helping with §8 reclamation is future work, as in the
       paper.}} *)

module Make (M : Onll_machine.Machine_sig.S) : Trace_intf.S = struct
  type ('env, 'state) node = {
    env : 'env option;  (* None only for the head sentinel *)
    mutable idx : int;
        (* written (with the same value) by every finishing helper, before
           the owner's announcement is released *)
    available : bool M.Tvar.t;
    next : ('env, 'state) link M.Tvar.t;  (* towards NEWER operations *)
    owner : int;  (* announcing process, for claim resolution *)
  }

  and ('env, 'state) link = Null | Node of ('env, 'state) node

  (* A pending insertion request (Kogan–Petrank "operation descriptor").
     Slots are replaced wholesale and compared physically by CAS. *)
  type ('env, 'state) desc = {
    phase : int;
    req : ('env, 'state) node option;
    pending : bool;
  }

  type ('env, 'state) t = {
    head : ('env, 'state) node;
    base_idx : int;
    base_state : 'state;
    tail : ('env, 'state) node M.Tvar.t;  (* may lag by one link *)
    state : ('env, 'state) desc M.Tvar.t array;  (* per process *)
    cursors : ('env, 'state) node array;
        (* per process: newest available node it has observed; owner-only *)
    sink : Onll_obs.Sink.t;
  }

  let create ?(sink = Onll_obs.Sink.null) ~base_idx ~base_state () =
    let head =
      {
        env = None;
        idx = base_idx;
        available = M.Tvar.make true;
        next = M.Tvar.make Null;
        owner = -1;
      }
    in
    {
      head;
      base_idx;
      base_state;
      tail = M.Tvar.make head;
      state =
        Array.init M.max_processes (fun _ ->
            M.Tvar.make { phase = 0; req = None; pending = false });
      cursors = Array.make M.max_processes head;
      sink;
    }

  let idx n = n.idx
  let is_available n = M.Tvar.get n.available
  let set_available n = M.Tvar.set n.available true

  (* {2 Kogan–Petrank insertion} *)

  let max_phase t =
    let m = ref 0 in
    Array.iter
      (fun slot ->
        let d = M.Tvar.get slot in
        if d.phase > !m then m := d.phase)
      t.state;
    !m

  let is_pending t q phase =
    let d = M.Tvar.get t.state.(q) in
    d.pending && d.phase <= phase

  (* Complete the link at the tail: fix the new node's index, release its
     owner's announcement, swing the tail. All three writes are idempotent
     or CAS-guarded, so any number of helpers may run this concurrently. *)
  let help_finish t =
    let last = M.Tvar.get t.tail in
    match M.Tvar.get last.next with
    | Null -> ()
    | Node node ->
        node.idx <- last.idx + 1;
        let q = node.owner in
        if q >= 0 then begin
          let d = M.Tvar.get t.state.(q) in
          match d.req with
          | Some n when n == node && d.pending ->
              ignore
                (M.Tvar.cas t.state.(q) ~expected:d
                   ~desired:{ d with pending = false })
          | Some _ | None -> ()
        end;
        ignore (M.Tvar.cas t.tail ~expected:last ~desired:node)

  let help_insert t q phase =
    let continue_ = ref (is_pending t q phase) in
    while !continue_ do
      let last = M.Tvar.get t.tail in
      let next = M.Tvar.get last.next in
      if last == M.Tvar.get t.tail then begin
        match next with
        | Null ->
            if is_pending t q phase then begin
              let d = M.Tvar.get t.state.(q) in
              match d.req with
              | Some node when d.pending ->
                  if M.Tvar.cas last.next ~expected:Null ~desired:(Node node)
                  then begin
                    help_finish t;
                    continue_ := false
                  end
                  else if Onll_obs.Sink.active t.sink then
                    Onll_obs.Sink.emit t.sink ~proc:(M.self ())
                      (Onll_obs.Event.Cas_retry { site = "wf_trace.insert" })
              | Some _ | None -> ()
            end
        | Node _ -> help_finish t
      end;
      if !continue_ then continue_ := is_pending t q phase
    done

  let help t phase =
    let p = M.self () in
    let helped = ref 0 in
    for q = 0 to Array.length t.state - 1 do
      if is_pending t q phase then begin
        if q <> p then incr helped;
        help_insert t q phase
      end
    done;
    if !helped > 0 && Onll_obs.Sink.active t.sink then
      Onll_obs.Sink.emit t.sink ~proc:p
        (Onll_obs.Event.Help { helped = !helped })

  let insert t env =
    let p = M.self () in
    let node =
      {
        env = Some env;
        idx = 0;
        available = M.Tvar.make false;
        next = M.Tvar.make Null;
        owner = p;
      }
    in
    let phase = max_phase t + 1 in
    M.Tvar.set t.state.(p) { phase; req = Some node; pending = true };
    help t phase;
    help_finish t;
    (* pending = false implies help_finish assigned our index *)
    node

  (* {2 Forward traversals}

     All scans start from an available node (a per-process cursor or the
     head) and recompute indices while walking, so they never read the
     mutable [idx] of a node that is not yet finished. *)

  (* Fold [f] over the nodes strictly after [start], oldest first, carrying
     the running index. *)
  let fold_forward start start_idx ~init ~f =
    let rec go curr curr_idx acc =
      match M.Tvar.get curr.next with
      | Null -> acc
      | Node n ->
          let n_idx = curr_idx + 1 in
          go n n_idx (f acc n n_idx)
    in
    go start start_idx init

  (* The caller's scan start: its cursor (always an available node). *)
  let cursor t =
    let p = M.self () in
    t.cursors.(p)

  let advance_cursor t node =
    let p = M.self () in
    if node.idx > t.cursors.(p).idx then t.cursors.(p) <- node

  let latest_available t =
    let start = cursor t in
    let best =
      fold_forward start start.idx ~init:start ~f:(fun best n _ ->
          if M.Tvar.get n.available then n else best)
    in
    advance_cursor t best;
    best

  let fuzzy_envs t node =
    let start = cursor t in
    (* newest available node <= node, then the suffix after it up to node *)
    let _, suffix_rev =
      fold_forward start start.idx ~init:(start, [])
        ~f:(fun (last_avail, suffix) n n_idx ->
          if n_idx > node.idx then (last_avail, suffix)
          else if M.Tvar.get n.available then (n, [])
          else (last_avail, (n_idx, n) :: suffix))
    in
    match suffix_rev with
    | [] ->
        (* shielded: some available node at or above us already covers the
           prefix; persist just ourselves (contiguity trivially holds) *)
        [ (match node.env with Some e -> e | None -> assert false) ]
    | suffix ->
        List.map
          (fun (_, n) ->
            match n.env with Some e -> e | None -> assert false)
          suffix

  let delta_from ?floor t node =
    let start, start_idx, state =
      match floor with
      | Some (fnode, fstate) when fnode.idx <= node.idx ->
          (fnode, fnode.idx, fstate)
      | Some _ | None -> (t.head, t.base_idx, t.base_state)
    in
    if start == node then (state, [])
    else
      let rec collect curr curr_idx acc =
        match M.Tvar.get curr.next with
        | Null ->
            (* [node] must be reachable from any valid floor *)
            assert false
        | Node n ->
            let n_idx = curr_idx + 1 in
            let acc =
              match n.env with
              | Some e -> (n_idx, e) :: acc
              | None -> acc
            in
            if n == node then List.rev acc else collect n n_idx acc
      in
      (state, collect start start_idx [])

  let to_list t =
    fold_forward t.head t.base_idx
      ~init:[ (t.base_idx, M.Tvar.get t.head.available, t.head.env) ]
      ~f:(fun acc n n_idx -> (n_idx, M.Tvar.get n.available, n.env) :: acc)
    |> List.rev

  let base_of t = (t.base_idx, t.base_state)

  let prune _t ~below:_ ~state_before:_ =
    raise
      (Trace_intf.Unsupported
         "Wf_trace.prune: reclamation on the wait-free trace is not \
          supported (see DESIGN.md §7)")
end
