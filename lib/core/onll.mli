(** ONLL — Order Now, Linearize Later: the paper's universal construction.

    Given a machine (simulated or native — {!Onll_machine.Machine_sig.S})
    and a deterministic sequential specification ({!Spec.S}), {!Make}
    produces a lock-free durably linearizable implementation of the object
    that issues {e at most one persistent fence per update operation and
    none per read-only operation} (Theorem 5.1). {!Make_wait_free} is the
    §8 variant over a Kogan–Petrank-style wait-free execution trace.

    An update runs the paper's three stages — {b order} (append a
    descriptor to the transient execution trace, fixing the linearization
    order), {b persist} (append the operation and every not-yet-available
    predecessor to the caller's single-fence persistent log), {b linearize}
    (set the descriptor's available flag) — and computes its return value
    from the trace prefix. Reads never write shared memory or NVM.

    The durable state {e is} the set of per-process logs; {!recover}
    rebuilds the transient trace from them after a full-system crash
    (Listing 5). The construction is {e detectable} [Friedman et al. 15]:
    operations carry client-visible identities and {!was_linearized}
    answers, post-recovery, whether a given operation took effect. *)

type op_id = { id_proc : int; id_seq : int }
(** Identity of an update: the invoking process and a per-process sequence
    number (chosen by the client with {!Make.update_detectable}, or
    allocated automatically). *)

val pp_op_id : Format.formatter -> op_id -> unit

exception Recovery_corrupt of string
(** Recovery found mutually inconsistent logs — impossible for logs written
    by this implementation surviving a crash (Prop. 5.10), so it indicates
    external corruption or a bug. Raised by the strict
    {!CONSTRUCTION.recover}; the hardened {!CONSTRUCTION.recover_report}
    reports the damage instead. *)

exception Log_full of string
(** Raised (with the log's region name) when an update or checkpoint record
    cannot be made durable even after auto-compaction — the live history
    alone exceeds the log's capacity, so this is terminal for the
    configured size. The transient {!Onll_plog.Plog.Full} no longer escapes
    the construction: a full log is first checkpointed and physically
    compacted ({!Onll_plog.Plog.Make.relocate}), and the append retried. *)

(** What a hardened recovery found and did — the precise detected-loss
    set the chaos campaign (E12) audits against. *)
module Recovery_report : sig
  type t = {
    recovered_ops : int;  (** operations replayed into the trace *)
    base_idx : int;  (** deepest surviving checkpoint *)
    gap_indices : int list;
        (** execution indices missing from every log (all durable copies
            corrupted), ascending; only the prefix below the first gap is
            adopted *)
    dropped : op_id list;
        (** operations that survived in some log but sit above the first
            gap, so they could not be replayed *)
    disagreements : int list;
        (** indices where two logs named different operations *)
    decode_failures : int;
        (** CRC-valid entries whose payload did not decode *)
    salvage : (string * Onll_plog.Plog.salvage_report) list;
        (** per-log media repairs (log region name, report) *)
    lost_acked : op_id list;
        (** E20 (relaxed mode): operations that were
            acknowledged to their caller fence-free under a staleness
            budget and whose sole copy was still volatile at the crash.
            Always [[]] from the strict constructions — only a relaxed
            wrapper ([Onll_relaxed]) can know an operation was acked, so
            only it fills this in. Budgeted loss is admitted, precisely
            accounted, and bounded by the configured risk budget; it does
            {e not} flip {!detected_loss}, which reports loss of
            {e durable} data. *)
  }

  val detected_loss : t -> bool
  (** Did recovery detect any durable-data loss? True iff there are gaps,
      dropped operations, disagreements, decode failures, or a log
      quarantined interior corruption. Torn-tail truncation alone is {e
      not} loss: a torn final entry was never acknowledged. Conservative:
      a quarantined span whose records were helped into other logs loses
      no operation but still reports [true]. *)

  val clean : t -> bool
  (** [not (detected_loss r)]. *)

  val pp : Format.formatter -> t -> unit

  val to_metrics : ?prefix:string -> Onll_obs.Metrics.t -> t -> unit
  (** Fold the report into a registry under [prefix] (default
      ["recovery."]): counters [recovered_ops]/[gaps]/[dropped]/
      [disagreements]/[decode_failures] and the salvage aggregates
      ([salvage.torn_tail_bytes], [salvage.quarantined_spans],
      [salvage.bytes_lost], [salvage.repaired_entries],
      [salvage.repaired_bytes]), gauges [base_idx] and [detected_loss]
      (0/1). The shape [onll stats] and the chaos campaigns export. *)

  val to_json : ?meta:(string * string) list -> t -> string
  (** The report as a canonical {!Onll_obs.Export.json} snapshot (a fresh
      registry folded via {!to_metrics}, tagged [report=recovery] plus
      [meta]). *)
end

(** Construction-time configuration — the one record every instantiation's
    {!CONSTRUCTION.make} takes. Build it by functional update of
    {!Config.default}:
    {[
      C.make { Onll.Config.default with sink; local_views = true }
    ]} *)
module Config : sig
  type t = {
    log_capacity : int;  (** per-process log entries area, bytes *)
    replicas : int;
        (** durable redundancy: each per-process log is mirrored over this
            many independent NVM regions (default 1 = unmirrored). All
            replica flushes of an append drain under one persistent fence,
            so Theorem 5.1's one-fence-per-update bound is unchanged;
            recovery and {!CONSTRUCTION.scrub} repair single-replica damage
            from an intact copy instead of losing it. *)
    local_views : bool;  (** §8 read acceleration *)
    region_suffix : string;
        (** appended to the spec name in every persistent region name
            (default [""]). The sharded construction ({!Onll_sharded})
            names shard [i]'s logs ["<spec>.s<i>..."] through this, so
            per-shard durable state is self-describing on media. *)
    sink : Onll_obs.Sink.t;
        (** receives the object-layer events ([Help], [Checkpoint],
            [Recovery], [Cas_retry], [Log_append], …) and hosts the
            per-operation attribution metrics ([ops.update],
            [fences.update], [fuzzy.window], …). Install the same sink in
            the machine (e.g. [Sim.create ~sink]) to interleave machine
            events ([Fence], [Flush], [Crash]) on one logical clock. *)
  }

  val default : t
  (** 64 KiB logs, unmirrored, no local views, {!Onll_obs.Sink.null}. *)
end

(** Everything the old one-question-per-call introspection functions
    answered, gathered by a single durable scan per log. *)
module Snapshot : sig
  type log = {
    log_name : string;  (** persistent region name *)
    live_bytes : int;
    used_bytes : int;
    entry_count : int;  (** valid entries from the head *)
    ops_per_entry : int list;
        (** operations per entry (0 for checkpoints); an entry with more
            than one operation exposes helping *)
  }

  type t = {
    latest_available_idx : int;
    max_fuzzy_window : int;
        (** largest fuzzy window observed at any persist step (Prop. 5.2
            bounds it by the machine's [max_processes]) *)
    degraded : bool;
        (** sticky degraded-mode flag: a recovery or scrub of this object
            detected durable data it could not repair. The object keeps
            serving — the loss is admitted, never silent. *)
    logs : log list;  (** per process, in process order *)
  }
end

(** The interface every instantiation provides. *)
module type CONSTRUCTION = sig
  type state
  type update_op
  type read_op
  type value

  type t
  (** A durable object: a transient execution trace plus one persistent log
      per process. *)

  val make : Config.t -> t
  (** Allocate a fresh object with empty per-process logs. The
      {!Config.t.sink} is threaded through every layer the object owns —
      its execution trace (CAS retries, helping), its persistent logs
      (appends, compaction) and its own lifecycle events — and hosts the
      per-operation attribution metrics; with the default null sink every
      instrumentation point is a single boolean test. *)

  val sink : t -> Onll_obs.Sink.t
  (** The sink this object was built with ({!Onll_obs.Sink.null} unless
      {!make} installed one). *)

  (** {1 Operations} *)

  val update : t -> update_op -> value
  (** Apply an update. Linearizable, durable on response, exactly one
      persistent fence on the common path. When the caller's log fills,
      the construction degrades gracefully instead of failing: it
      checkpoints, physically compacts the log and retries the append.
      @raise Onll.Log_full when even that cannot make room (the live
      history alone exceeds the log's capacity). *)

  val update_with_id : t -> update_op -> op_id * value
  (** Like {!update}, also returning the operation's identity. *)

  val update_detectable : t -> seq:int -> update_op -> value
  (** Like {!update} with a {e client-chosen} sequence number, so the
      client can interrogate {!was_linearized} about this exact invocation
      after a crash even though the call never returned. Sequence numbers
      must be fresh (strictly above any previously used by this process —
      including numbers consumed by {!update}/{!update_with_id}, which
      allocate from the same per-process counter).

      {b Reuse is rejected before any effect}: a duplicate [seq] — whether
      with the same payload (an at-least-once retry) or a different one
      (an identity collision) — raises [Invalid_argument] {e before} the
      operation is ordered, appended or applied; the object's state,
      logs and the reused identity's {!was_linearized} answer are
      untouched. Detectability depends on identities being unique, so
      the construction refuses rather than guesses. Pinned by
      [test/test_onll.ml]; {!Onll_session} builds the exactly-once retry
      protocol this guarantee makes possible.
      @raise Invalid_argument on reuse, with no state change. *)

  val read : t -> read_op -> value
  (** Apply a read-only operation: no shared-memory writes, no NVM
      accesses, no fences. *)

  (** {1 Crash recovery} *)

  val recover : t -> unit
  (** Rebuild the transient state from the durable logs (Listing 5): call
      after a crash, before the first post-crash operation. Idempotent.
      The recovered history contains every operation whose log append was
      fenced (in particular every update that responded), in execution
      order, starting from the deepest checkpoint. Runs the same hardened
      path as {!recover_report} (including durable log salvage), then
      insists the result was loss-free.
      @raise Recovery_corrupt if any durable data loss was detected. *)

  val recover_report : t -> Recovery_report.t
  (** Hardened recovery for media-faulted logs: salvages each log
      (quarantining interior corruption, truncating torn tails — see
      {!Onll_plog.Plog.Make.recover}), then adopts the longest contiguous
      history prefix above the deepest surviving checkpoint, and reports
      exactly what was lost instead of raising. Idempotent and
      re-entrant: interrupted by a crash at any durable operation, a
      re-run converges — every repair it performs is idempotent, and a
      final uninterrupted run yields the same adopted history. Sequence
      allocation is bumped past {e every} identity seen in any log —
      including unadoptable ones — so post-recovery updates never reuse a
      pre-crash id. *)

  val recover_unhardened : t -> unit
  (** The pre-hardening recovery: per-log truncating scan, first-wins on
      disagreements, silent stop at the first gap — no salvage, no report,
      no error. The deliberately broken calibration baseline for the chaos
      campaign (E12), which must catch it silently losing data; never use
      it otherwise. *)

  val scrub : t -> Onll_plog.Plog.scrub_report
  (** Online self-healing (E13): CRC-walk every process's log across its
      replicas {e while the object is live}, durably repairing any replica
      divergence from an intact copy and quarantining spans corrupt in
      every replica (which also sets {!degraded}). A cooperative step —
      call it from any process between operations, e.g. every N scheduler
      steps or from the [onll scrub] CLI verb. Returns the aggregated
      per-log report; fences are recorded under ["ops.scrub"]/
      ["fences.scrub"], never against the per-update Theorem 5.1
      attribution. With [replicas = 1] it still detects (and quarantines)
      rot early, it just cannot repair it. *)

  val degraded : t -> bool
  (** Sticky degraded-mode flag (also surfaced in {!Snapshot.t}): did any
      recovery or scrub of this object detect durable data it could not
      repair? The object keeps serving after such loss — degraded mode is
      the policy that loss is admitted and named, never silent and never
      fatal. *)

  val was_linearized : t -> op_id -> bool
  (** Detectable execution: did this operation take effect? For operations
      older than the deepest checkpoint the answer comes from the per-process
      sequence floors carried by materialised states, so compaction does not
      lose detectability. *)

  val recovered_ops : t -> (op_id * int) list
  (** The operations recovery re-inserted, with their execution indices,
      oldest first (empty before any recovery). *)

  (** {1 §8 extensions: reclamation} *)

  val checkpoint : t -> int
  (** Summarise the history up to the newest available operation into the
      caller's log and drop the log prefix this makes redundant. Two
      persistent fences (the checkpoint append and the durable head
      update); a handful more only if the log was full and had to be
      physically compacted first. Returns the summarised execution index.
      @raise Onll.Log_full if the checkpoint record cannot fit even after
      compaction. *)

  val prune : t -> below:int -> unit
  (** Make trace nodes with execution index < [below] unreachable,
      materialising their cumulative state (the node at [below] must be
      available). @raise Trace_intf.Unsupported on the wait-free variant. *)

  (** {1 Introspection (tests, scenarios, reports)} *)

  type envelope

  val envelope_id : envelope -> op_id
  val envelope_op : envelope -> update_op

  val trace_nodes : t -> (int * bool * envelope option) list
  (** Reachable trace nodes, oldest first: (execution index, available
      flag, operation — [None] for the sentinel). *)

  val trace_base : t -> int * state
  (** The trace's summarised base: index and materialised state. *)

  val current_state : t -> state
  (** State at the newest available operation. *)

  val snapshot : t -> Snapshot.t
  (** Every introspection statistic in one call, decoding each log once:
      durable watermark, fuzzy-window high-water mark, degraded flag and
      per-log space/entry statistics. *)
end

(** {!CONSTRUCTION} plus the hooks a cross-shard transaction coordinator
    ({!Onll_txn}, E19) needs: the update's order/persist/linearize stages
    exposed separately, so the coordinator can order a sub-operation in
    each participant shard, persist the {e whole} transaction with one
    fence in its own region, and only then linearize the staged nodes —
    and a recovery variant that accepts a committed-transaction oracle.

    A staged envelope carries the encoded commit payload, so any
    concurrent update that helps persist it (Listing 3's fuzzy window)
    thereby durably commits the whole transaction — that is what keeps a
    staged-but-uncommitted node from ever becoming durable {e without}
    its transaction. *)
module type TXN_CAPABLE = sig
  include CONSTRUCTION

  type staged
  (** An ordered-but-not-yet-linearized sub-operation: a trace node that
      is not available and has no durable copy of its own yet. *)

  val reserve_seq : t -> int
  (** Allocate (and consume) the calling process's next sequence number
      without running an update, so the coordinator can fix every
      sub-operation's identity before encoding the commit payload. *)

  val stage_txn : t -> seq:int -> payload:string -> update_op -> staged
  (** Order stage only: insert the sub-operation into the trace, tagged
      with the transaction's commit [payload], not yet available, nothing
      written durably. [seq] must come from {!reserve_seq}.
      @raise Invalid_argument if [seq] was never reserved. *)

  val staged_idx : staged -> int
  (** The staged node's execution index — recorded in the commit payload
      so recovery can re-adopt the sub-operation in place. *)

  val finish_txn : t -> staged -> value
  (** Linearize stage: set the staged node available and compute its
      return value from the trace prefix. No fences. Call only after the
      transaction's commit record is durable. *)

  val inject_txn_run : t -> (op_id * update_op) list -> int list
  (** Recovery-side re-apply for committed sub-operations absent from the
      rebuilt trace: insert each (oldest first), linearize it, and make
      the whole run durable in the calling process's log with one fenced
      append, returning the assigned execution indices. Identities are
      registered with {!CONSTRUCTION.recovered_ops} /
      {!CONSTRUCTION.was_linearized} and sequence allocation is bumped
      past them. *)

  val recover_txn :
    t ->
    extra:(int * op_id * update_op) list ->
    Recovery_report.t * string list
  (** Hardened recovery ({!CONSTRUCTION.recover_report}) with a
      committed-transaction oracle: [extra] lists sub-operations (staged
      execution index, identity, operation) whose durability is vouched
      for by a coordinator commit record. They fill index holes the shard
      logs alone cannot account for, and are never themselves reported as
      gaps or drops — an oracle entry that cannot be adopted in place is
      left to the coordinator sweep ({!Onll_txn}) to re-apply. Also
      returns every commit payload found riding in a logged envelope: the
      transactions committed by a helping process rather than by their
      coordinator. *)
end

module Make_generic
    (M : Onll_machine.Machine_sig.S)
    (T : Trace_intf.S)
    (S : Spec.S) :
  TXN_CAPABLE
    with type state = S.state
     and type update_op = S.update_op
     and type read_op = S.read_op
     and type value = S.value

(** The paper's construction: ONLL over the lock-free Listing 2 trace. *)
module Make (M : Onll_machine.Machine_sig.S) (S : Spec.S) :
  TXN_CAPABLE
    with type state = S.state
     and type update_op = S.update_op
     and type read_op = S.read_op
     and type value = S.value

(** §8: the same construction over the Kogan–Petrank-style wait-free trace
    ({!Wf_trace}); {!CONSTRUCTION.prune} is unsupported. *)
module Make_wait_free (M : Onll_machine.Machine_sig.S) (S : Spec.S) :
  TXN_CAPABLE
    with type state = S.state
     and type update_op = S.update_op
     and type read_op = S.read_op
     and type value = S.value
