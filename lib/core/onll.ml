(** ONLL — Order Now, Linearize Later (paper §4).

    The universal construction: given a machine and a deterministic
    sequential specification, produce a lock-free durably linearizable
    object using at most one persistent fence per update and none per read.

    An update proceeds in the paper's three stages:
    + {b order} — insert a descriptor node into the transient execution
      trace, fixing the operation's linearization {e order} (but not yet its
      linearization point);
    + {b persist} — append the operation {e and} every not-yet-available
      operation preceding it (the fuzzy window — helping) to the invoking
      process's persistent log, with a single persistent fence;
    + {b linearize} — set the node's available flag, making the operation
      visible to readers; compute the return value from the trace prefix.

    Reads find the newest available node and compute against that prefix;
    they never write shared memory or NVM.

    Recovery (Listing 5) rebuilds the trace from the per-process logs in
    execution-index order. The construction is {e detectable} [15]: every
    update carries a [(process, sequence)] id and {!Make.was_linearized}
    answers, after recovery, whether it took effect before the crash.

    §8 extensions implemented here: per-process local views (read
    acceleration), trace pruning and log compaction via checkpoints. To keep
    operation identities meaningful across compaction, materialised states
    internally carry a per-process sequence floor (the number of that
    process's operations already summarised), so detectability and sequence
    allocation survive even when the operations themselves have been
    reclaimed. *)

module Metrics = Onll_obs.Metrics

type op_id = { id_proc : int; id_seq : int }

let pp_op_id ppf { id_proc; id_seq } =
  Format.fprintf ppf "p%d#%d" id_proc id_seq

exception Recovery_corrupt of string
(** Raised when the durable logs are mutually inconsistent (which the
    correctness argument of Prop. 5.10 rules out for crash-consistent logs,
    so this indicates actual corruption or a bug). *)

exception Log_full of string
(** Raised (with the log's region name) when an update or checkpoint record
    cannot be made durable even after auto-compaction: the live history
    alone exceeds the log's capacity. Unlike {!Onll_plog.Plog.Full}, this
    is terminal for the configured capacity. *)

(* What a hardened recovery found and did; see onll.mli. *)
module Recovery_report = struct
  type t = {
    recovered_ops : int;
    base_idx : int;
    gap_indices : int list;
    dropped : op_id list;
    disagreements : int list;
    decode_failures : int;
    salvage : (string * Onll_plog.Plog.salvage_report) list;
    lost_acked : op_id list;
  }

  let detected_loss r =
    r.gap_indices <> [] || r.dropped <> [] || r.disagreements <> []
    || r.decode_failures > 0
    || List.exists
         (fun (_, s) -> s.Onll_plog.Plog.quarantined_spans > 0)
         r.salvage

  let clean r = not (detected_loss r)

  let pp ppf r =
    Format.fprintf ppf
      "@[<v>recovered_ops=%d base_idx=%d gaps=%d dropped=%d disagreements=%d \
       decode_failures=%d lost_acked=%d@,"
      r.recovered_ops r.base_idx
      (List.length r.gap_indices)
      (List.length r.dropped)
      (List.length r.disagreements)
      r.decode_failures
      (List.length r.lost_acked);
    List.iter
      (fun (name, s) ->
        if s <> Onll_plog.Plog.clean_report then
          Format.fprintf ppf "%s: %a@," name Onll_plog.Plog.pp_salvage_report
            s)
      r.salvage;
    Format.fprintf ppf "detected_loss=%b@]" (detected_loss r)

  let to_metrics ?(prefix = "recovery.") reg r =
    let c name v = Metrics.add (Metrics.counter reg (prefix ^ name)) v in
    let g name v = Metrics.set (Metrics.gauge reg (prefix ^ name)) v in
    c "recovered_ops" r.recovered_ops;
    c "gaps" (List.length r.gap_indices);
    c "dropped" (List.length r.dropped);
    c "disagreements" (List.length r.disagreements);
    c "decode_failures" r.decode_failures;
    c "lost_acked" (List.length r.lost_acked);
    g "base_idx" (float_of_int r.base_idx);
    g "detected_loss" (if detected_loss r then 1. else 0.);
    let torn, quarantined, lost_bytes, repaired, repaired_bytes =
      List.fold_left
        (fun (t, q, lb, re, rb) (_, s) ->
          ( t + s.Onll_plog.Plog.torn_tail_bytes,
            q + s.Onll_plog.Plog.quarantined_spans,
            lb + Onll_plog.Plog.report_lost s,
            re + s.Onll_plog.Plog.repaired_entries,
            rb + s.Onll_plog.Plog.repaired_bytes ))
        (0, 0, 0, 0, 0) r.salvage
    in
    c "salvage.torn_tail_bytes" torn;
    c "salvage.quarantined_spans" quarantined;
    c "salvage.bytes_lost" lost_bytes;
    c "salvage.repaired_entries" repaired;
    c "salvage.repaired_bytes" repaired_bytes

  let to_json ?(meta = []) r =
    let reg = Metrics.create () in
    to_metrics reg r;
    Onll_obs.Export.json ~meta:(("report", "recovery") :: meta) reg
end

(* Construction-time knobs; see onll.mli. *)
module Config = struct
  type t = {
    log_capacity : int;
    replicas : int;
    local_views : bool;
    region_suffix : string;
    sink : Onll_obs.Sink.t;
  }

  let default =
    {
      log_capacity = 1 lsl 16;
      replicas = 1;
      local_views = false;
      region_suffix = "";
      sink = Onll_obs.Sink.null;
    }
end

(* One-call introspection bundle; see onll.mli. *)
module Snapshot = struct
  type log = {
    log_name : string;
    live_bytes : int;
    used_bytes : int;
    entry_count : int;
    ops_per_entry : int list;
  }

  type t = {
    latest_available_idx : int;
    max_fuzzy_window : int;
    degraded : bool;
    logs : log list;
  }
end

(* Duplicated (condensed) from onll.mli, which carries the documentation. *)
module type CONSTRUCTION = sig
  type state
  type update_op
  type read_op
  type value
  type t

  val make : Config.t -> t
  val sink : t -> Onll_obs.Sink.t
  val update : t -> update_op -> value
  val update_with_id : t -> update_op -> op_id * value
  val update_detectable : t -> seq:int -> update_op -> value
  val read : t -> read_op -> value
  val recover : t -> unit
  val recover_report : t -> Recovery_report.t
  val recover_unhardened : t -> unit
  val scrub : t -> Onll_plog.Plog.scrub_report
  val degraded : t -> bool
  val was_linearized : t -> op_id -> bool
  val recovered_ops : t -> (op_id * int) list
  val checkpoint : t -> int
  val prune : t -> below:int -> unit

  type envelope

  val envelope_id : envelope -> op_id
  val envelope_op : envelope -> update_op
  val trace_nodes : t -> (int * bool * envelope option) list
  val trace_base : t -> int * state
  val current_state : t -> state
  val snapshot : t -> Snapshot.t
end

(* CONSTRUCTION plus the order/linearize split and the oracle-aware
   recovery a cross-shard coordinator (E19, {!Onll_txn}) needs. Duplicated
   (condensed) from onll.mli, which carries the documentation. *)
module type TXN_CAPABLE = sig
  include CONSTRUCTION

  type staged

  val reserve_seq : t -> int
  val stage_txn : t -> seq:int -> payload:string -> update_op -> staged
  val staged_idx : staged -> int
  val finish_txn : t -> staged -> value
  val inject_txn_run : t -> (op_id * update_op) list -> int list

  val recover_txn :
    t ->
    extra:(int * op_id * update_op) list ->
    Recovery_report.t * string list
end

(* The construction is generic in the trace implementation (see
   Trace_intf): [Make] uses the paper's lock-free trace, [Make_wait_free]
   the Kogan–Petrank-style wait-free one (§8). *)
module Make_generic
    (M : Onll_machine.Machine_sig.S)
    (T : Trace_intf.S)
    (S : Spec.S) :
  TXN_CAPABLE
    with type state = S.state
     and type update_op = S.update_op
     and type read_op = S.read_op
     and type value = S.value = struct
  module L = Onll_plog.Plog.Make (M)

  type state = S.state
  type update_op = S.update_op
  type read_op = S.read_op
  type value = S.value

  (* [e_txn]: when this operation is a sub-operation of a cross-shard
     transaction (E19, {!Onll_txn}) that has been staged but whose
     coordinator record is not yet known durable, it carries the encoded
     commit payload. Any process that persists such an envelope (helping,
     Listing 3) thereby makes the whole transaction durable: recovery
     treats a payload found in any log as a committed transaction. *)
  type envelope = {
    e_proc : int;
    e_seq : int;
    e_op : S.update_op;
    e_txn : string option;
  }

  let envelope_id e = { id_proc = e.e_proc; id_seq = e.e_seq }
  let envelope_op e = e.e_op

  (* Materialised state: the specification state plus, per process, how many
     of its operations are included ([floors.(p)] = 1 + highest included
     sequence number). Immutable; [floors] is copied on write. *)
  type istate = { st : S.state; floors : int array }

  let initial_istate () =
    { st = S.initial; floors = Array.make M.max_processes 0 }

  let apply_env is env =
    let st, v = S.apply is.st env.e_op in
    let floors =
      if env.e_seq >= is.floors.(env.e_proc) then begin
        let f = Array.copy is.floors in
        f.(env.e_proc) <- env.e_seq + 1;
        f
      end
      else is.floors
    in
    ({ st; floors }, v)

  (* What goes into the persistent log. [Ops] is Listing 1's recordEntry:
     the helped envelopes, newest first, with contiguous execution indices
     descending from [exec_idx]. [Checkpoint] summarises the history up to
     [upto_idx] for compaction (§8). *)
  type record =
    | Ops of { exec_idx : int; envs : envelope list }
    | Checkpoint of { upto_idx : int; state : istate }

  let envelope_codec =
    let open Onll_util.Codec in
    map
      (fun ((e_proc, e_seq, e_op), e_txn) -> { e_proc; e_seq; e_op; e_txn })
      (fun { e_proc; e_seq; e_op; e_txn } -> ((e_proc, e_seq, e_op), e_txn))
      (pair (triple int int S.update_codec) (option string))

  let istate_codec =
    let open Onll_util.Codec in
    map
      (fun (st, floors) -> { st; floors })
      (fun { st; floors } -> (st, floors))
      (pair S.state_codec (array int))

  let record_codec =
    let open Onll_util.Codec in
    let ops_c = pair int (list envelope_codec) in
    let ckpt_c = pair int istate_codec in
    tagged
      (function
        | Ops { exec_idx; envs } -> (0, encode ops_c (exec_idx, envs))
        | Checkpoint { upto_idx; state } ->
            (1, encode ckpt_c (upto_idx, state)))
      (fun tag body ->
        match tag with
        | 0 ->
            let exec_idx, envs = decode ops_c body in
            Ops { exec_idx; envs }
        | 1 ->
            let upto_idx, state = decode ckpt_c body in
            Checkpoint { upto_idx; state }
        | n -> raise (Decode_error (Printf.sprintf "record: bad tag %d" n)))

  type t = {
    mutable trace : (envelope, istate) T.t;
        (** replaced wholesale by recovery *)
    logs : L.t array;  (** per process; the durable state *)
    seqs : int array;  (** next per-process op sequence number; owner-only *)
    views : ((envelope, istate) T.node * istate) option array;
        (** per-process local view (§8): an available node and the state at
            it; owner-only *)
    use_views : bool;
    recovered : (op_id, int) Hashtbl.t;
        (** op id -> execution index, rebuilt by recovery *)
    mutable max_fuzzy : int;
        (** largest fuzzy window observed at any persist step (Prop 5.2
            says this never exceeds MAX-PROCESSES) *)
    mutable degraded : bool;
        (** sticky: recovery or scrub found durable data this object could
            not repair — it keeps serving, but with admitted loss *)
    ostats : Onll_obs.Opstats.t;
        (** per-operation fence attribution; inert without a sink *)
  }

  let instances = ref 0

  let make (cfg : Config.t) =
    let n = !instances in
    incr instances;
    let sink = cfg.Config.sink in
    {
      trace = T.create ~sink ~base_idx:0 ~base_state:(initial_istate ()) ();
      logs =
        Array.init M.max_processes (fun p ->
            L.create ~sink ~replicas:cfg.Config.replicas
              ~name:
                (Printf.sprintf "%s%s.%d.plog.%d" S.name
                   cfg.Config.region_suffix n p)
              ~capacity:cfg.Config.log_capacity ());
      seqs = Array.make M.max_processes 0;
      views = Array.make M.max_processes None;
      use_views = cfg.Config.local_views;
      recovered = Hashtbl.create 64;
      max_fuzzy = 0;
      degraded = false;
      ostats = Onll_obs.Opstats.make sink;
    }

  let sink t = Onll_obs.Opstats.sink t.ostats

  module A = Attribution.Make (M)

  let attributed t record f = A.attributed t.ostats record f

  (* State of the object at [node] (after applying node's operation), plus
     the return value of node's own operation if it contributed to the
     delta. Maintains the caller's local view when enabled. *)
  let compute t node =
    let p = M.self () in
    let floor = if t.use_views then t.views.(p) else None in
    let base, delta = T.delta_from ?floor t.trace node in
    let state, last_value =
      List.fold_left
        (fun (is, _) (_, env) ->
          let is', v = apply_env is env in
          (is', Some v))
        (base, None)
        delta
    in
    if t.use_views then t.views.(p) <- Some (node, state);
    (state, last_value)

  (* State after [node] without touching local views (recovery/pruning
     contexts, where the caller is not a registered process). *)
  let istate_at t node =
    let base, delta = T.delta_from t.trace node in
    List.fold_left (fun is (_, env) -> fst (apply_env is env)) base delta

  let decode_entries log =
    List.map (Onll_util.Codec.decode record_codec) (L.entries log)

  (* Summarise the history up to the newest available operation into
     process [p]'s log, then drop (and, on demand, physically reclaim) the
     log prefix this makes redundant. Body shared by the public
     [checkpoint] (attributed) and by auto-compaction inside the update
     path (where the fences are already attributed to the update). *)
  let checkpoint_body t p =
    let node = T.latest_available t.trace in
    let state = istate_at t node in
    let upto = T.idx node in
    let payload =
      Onll_util.Codec.encode record_codec (Checkpoint { upto_idx = upto; state })
    in
    (match L.try_append t.logs.(p) payload with
    | Ok () -> ()
    | Error `Full -> (
        (* an earlier compaction may have left reclaimable dead space *)
        L.relocate t.logs.(p);
        match L.try_append t.logs.(p) payload with
        | Ok () -> ()
        | Error `Full -> raise (Log_full (L.name t.logs.(p)))));
    let droppable =
      (* Our own Ops entries have increasing exec_idx, so the droppable
         entries form a prefix. *)
      let rec count acc = function
        | Ops { exec_idx; _ } :: rest when exec_idx <= upto ->
            count (acc + 1) rest
        | Checkpoint { upto_idx; _ } :: rest when upto_idx < upto ->
            count (acc + 1) rest
        | _ -> acc
      in
      count 0 (decode_entries t.logs.(p))
    in
    L.set_head t.logs.(p) droppable;
    if Onll_obs.Opstats.active t.ostats then
      Onll_obs.Sink.emit
        (Onll_obs.Opstats.sink t.ostats)
        ~proc:p
        (Onll_obs.Event.Checkpoint { upto });
    upto

  (* Persist-stage append with graceful [Full] degradation: when the log
     runs low, summarise our history (checkpoint), physically compact the
     log, and retry; only if the record still does not fit does the typed
     [Log_full] escape.

     The headroom check is what keeps compaction possible at all: the
     checkpoint record must itself be appended before the prefix it
     summarises can be dropped, so a log allowed to fill to the last byte
     with no checkpoint below it could never be compacted. We therefore
     compact while there is still room for the checkpoint record — its
     exact encoded size, computed only when the log is nearly full. *)
  let entry_overhead = 16 (* plog [len][crc] framing *)

  let ckpt_payload t =
    let node = T.latest_available t.trace in
    Onll_util.Codec.encode record_codec
      (Checkpoint { upto_idx = T.idx node; state = istate_at t node })

  let append_record t p payload =
    let log = t.logs.(p) in
    let need = String.length payload + entry_overhead in
    (if L.free_bytes log < 2 * need + 64 then
       let ckpt = ckpt_payload t in
       if L.free_bytes log < need + String.length ckpt + entry_overhead then begin
         (try ignore (checkpoint_body t p) with Log_full _ -> ());
         L.relocate log
       end);
    match L.try_append log payload with
    | Ok () -> ()
    | Error `Full -> (
        ignore (checkpoint_body t p);
        L.relocate log;
        match L.try_append log payload with
        | Ok () -> ()
        | Error `Full -> raise (Log_full (L.name log)))

  (* Listing 3. *)
  let update_env_body t env =
    let node = T.insert t.trace env in
    let fuzzy = T.fuzzy_envs t.trace node in
    let fuzzy_len = List.length fuzzy in
    (* Prop 5.2 bounds the window by MAX-PROCESSES counting at most one
       in-flight operation per process; staged transaction sub-operations
       (E19) are exempt — one process may have several staged at once. *)
    assert (
      List.length (List.filter (fun e -> e.e_txn = None) fuzzy)
      <= M.max_processes);
    if fuzzy_len > t.max_fuzzy then t.max_fuzzy <- fuzzy_len;
    if Onll_obs.Opstats.active t.ostats then begin
      Onll_obs.Opstats.observe_fuzzy t.ostats fuzzy_len;
      (* A window larger than 1 means this update persisted other
         processes' not-yet-available operations: helping. *)
      if fuzzy_len > 1 then
        Onll_obs.Sink.emit
          (Onll_obs.Opstats.sink t.ostats)
          ~proc:env.e_proc
          (Onll_obs.Event.Help { helped = fuzzy_len - 1 })
    end;
    let payload =
      Onll_util.Codec.encode record_codec
        (Ops { exec_idx = T.idx node; envs = fuzzy })
    in
    append_record t env.e_proc payload;
    T.set_available node;
    let _, value = compute t node in
    M.return_point ();
    match value with
    | Some v -> v
    | None -> assert false  (* node's own op is always in the delta *)

  let update_env t env =
    attributed t Onll_obs.Opstats.update_done (fun () ->
        update_env_body t env)

  let next_id t =
    let p = M.self () in
    let seq = t.seqs.(p) in
    t.seqs.(p) <- seq + 1;
    { id_proc = p; id_seq = seq }

  let update_with_id t op =
    let id = next_id t in
    let v =
      update_env t
        { e_proc = id.id_proc; e_seq = id.id_seq; e_op = op; e_txn = None }
    in
    (id, v)

  let update t op = snd (update_with_id t op)

  (* Detectable-execution entry point: the caller chooses the sequence
     number, so it can ask {!was_linearized} about this exact operation
     after a crash, even though the call itself never returned. *)
  let update_detectable t ~seq op =
    let p = M.self () in
    if seq < t.seqs.(p) then
      invalid_arg "Onll.update_detectable: sequence number reused";
    t.seqs.(p) <- seq + 1;
    update_env t { e_proc = p; e_seq = seq; e_op = op; e_txn = None }

  (* Listing 4. *)
  let read t rop =
    attributed t Onll_obs.Opstats.read_done (fun () ->
        let node = T.latest_available t.trace in
        let state, _ = compute t node in
        let v = S.read state.st rop in
        M.return_point ();
        v)

  (* {2 Recovery — Listing 5, hardened} *)

  (* Tolerant decode: a CRC-valid entry whose payload nevertheless fails to
     decode (requires forged or astronomically unlucky bytes) is dropped
     and counted rather than aborting recovery. *)
  let decode_entries_tolerant log failures =
    List.filter_map
      (fun e ->
        match Onll_util.Codec.decode record_codec e with
        | r -> Some r
        | exception _ ->
            incr failures;
            None)
      (L.entries log)

  (* The one recovery routine. [hardened] selects the log-level recovery
     (salvaging vs. silently truncating); the trace rebuild is tolerant in
     both cases — it adopts the longest contiguous prefix above the deepest
     checkpoint — and the report says exactly what could not be adopted.
     The strict [recover] entry point turns a lossy report into
     [Recovery_corrupt]; the unhardened one discards it (the calibration
     baseline the chaos campaign must catch).

     [extra] (E19) is the committed-transaction oracle: sub-operations
     whose sole durable copy is a coordinator's commit record, keyed by
     the execution index assigned when they were staged. They are merged
     into the index table before the gap scan, so a hole a shard log
     alone cannot account for (a staged sub-operation overwritten only in
     the coordinator region) is filled rather than reported as loss.
     Oracle entries never *create* reportable gaps: gaps are reported
     only below the highest log-resident index, because a missing index
     there strands a durably-logged operation, whereas indices reachable
     only through the oracle are simply re-applied by the coordinator
     sweep ({!Onll_txn}) if they cannot be adopted in place.

     Also returns every transaction commit payload found riding in a
     logged envelope ([e_txn]) — the helper-committed transactions. *)
  let recover_core t ~hardened ~extra =
    let salvage =
      if hardened then
        Array.to_list t.logs |> List.map (fun l -> (L.name l, L.recover l))
      else begin
        Array.iter L.recover_unhardened t.logs;
        []
      end
    in
    let decode_failures = ref 0 in
    let records =
      Array.to_list t.logs
      |> List.concat_map (fun l -> decode_entries_tolerant l decode_failures)
    in
    (* Best checkpoint = deepest summarised prefix. *)
    let base_idx, base_state =
      List.fold_left
        (fun ((bi, _) as best) r ->
          match r with
          | Checkpoint { upto_idx; state } when upto_idx > bi ->
              (upto_idx, state)
          | Checkpoint _ | Ops _ -> best)
        (0, initial_istate ())
        records
    in
    (* Execution index -> envelope, from every Ops record. Duplicates are
       fine (helping stores the same operation in several logs); they must
       agree on the operation id. *)
    let by_idx = Hashtbl.create 64 in
    let disagreements = ref [] in
    let payloads = ref [] in
    List.iter
      (function
        | Checkpoint _ -> ()
        | Ops { exec_idx; envs } ->
            List.iteri
              (fun k env ->
                (match env.e_txn with
                | Some p when not (List.mem p !payloads) ->
                    payloads := p :: !payloads
                | Some _ | None -> ());
                let idx = exec_idx - k in
                match Hashtbl.find_opt by_idx idx with
                | None -> Hashtbl.replace by_idx idx env
                | Some prior ->
                    if prior.e_proc <> env.e_proc || prior.e_seq <> env.e_seq
                    then disagreements := idx :: !disagreements)
              envs)
      records;
    (* Highest index with a *log-resident* copy: the horizon below which a
       missing index is reportable loss. *)
    let log_max = Hashtbl.fold (fun i _ acc -> max i acc) by_idx base_idx in
    (* [extended] = log entries plus the committed-transaction oracle. An
       oracle entry whose identity is already log-resident is skipped: a
       sub-operation an earlier sweep re-applied (and durably logged) at a
       relocated index would otherwise collide with its own commit
       record's stale staging index. *)
    let log_ids = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ env -> Hashtbl.replace log_ids (env.e_proc, env.e_seq) ())
      by_idx;
    let extended = Hashtbl.copy by_idx in
    List.iter
      (fun (idx, id, op) ->
        if idx > base_idx && not (Hashtbl.mem log_ids (id.id_proc, id.id_seq))
        then
          let env =
            { e_proc = id.id_proc; e_seq = id.id_seq; e_op = op; e_txn = None }
          in
          match Hashtbl.find_opt extended idx with
          | None -> Hashtbl.replace extended idx env
          | Some prior ->
              if prior.e_proc <> env.e_proc || prior.e_seq <> env.e_seq then
                disagreements := idx :: !disagreements)
      extra;
    (* Under the clean crash model a gap below a persisted operation is
       impossible (Prop 5.10); under media faults it means the operation's
       every durable copy was corrupted. Only the contiguous prefix below
       the first gap can be adopted — anything above it cannot be replayed
       without fabricating the missing operation, so it is reported as
       dropped instead. *)
    let gaps = ref [] in
    for idx = log_max downto base_idx + 1 do
      if not (Hashtbl.mem extended idx) then gaps := idx :: !gaps
    done;
    let gaps = !gaps in
    (* Adopt the longest contiguous prefix of the extended table; with no
       oracle entries this is exactly first-gap - 1. *)
    let stop_idx =
      let rec go i = if Hashtbl.mem extended (i + 1) then go (i + 1) else i in
      go base_idx
    in
    let trace =
      T.create ~sink:(Onll_obs.Opstats.sink t.ostats) ~base_idx ~base_state ()
    in
    Hashtbl.reset t.recovered;
    Array.blit base_state.floors 0 t.seqs 0 M.max_processes;
    Array.fill t.views 0 (Array.length t.views) None;
    (* Bump sequence allocation past every id recovery has seen — including
       ids above a gap that cannot be replayed — so no post-recovery update
       can reuse a pre-crash identity. *)
    Hashtbl.iter
      (fun _ env ->
        if env.e_seq >= t.seqs.(env.e_proc) then
          t.seqs.(env.e_proc) <- env.e_seq + 1)
      extended;
    for idx = base_idx + 1 to stop_idx do
      let env = Hashtbl.find extended idx in
      let node = T.insert trace env in
      assert (T.idx node = idx);
      T.set_available node;
      Hashtbl.replace t.recovered
        { id_proc = env.e_proc; id_seq = env.e_seq }
        idx
    done;
    (* Only log-resident strandings count as dropped: an oracle entry
       above the stop index is re-applied by the coordinator sweep, so
       nothing durable is lost through it. *)
    let dropped = ref [] in
    for idx = log_max downto stop_idx + 1 do
      match Hashtbl.find_opt by_idx idx with
      | Some env ->
          dropped := { id_proc = env.e_proc; id_seq = env.e_seq } :: !dropped
      | None -> ()
    done;
    t.trace <- trace;
    if Onll_obs.Opstats.active t.ostats then
      Onll_obs.Sink.emit
        (Onll_obs.Opstats.sink t.ostats)
        ~proc:(M.self ())
        (Onll_obs.Event.Recovery { ops = stop_idx - base_idx });
    let report =
      {
        Recovery_report.recovered_ops = stop_idx - base_idx;
        base_idx;
        gap_indices = gaps;
        dropped = !dropped;
        disagreements = List.sort_uniq compare !disagreements;
        decode_failures = !decode_failures;
        salvage;
        (* Only a relaxed-mode wrapper ({!Onll_relaxed}) knows which acked
           operations were still unfenced at the crash; the core cannot
           distinguish a lost unfenced suffix from operations that were
           simply never invoked, so it reports none. *)
        lost_acked = [];
      }
    in
    (* The degraded-mode policy: detected loss never stops the object, but
       it is admitted, stickily, until the object is rebuilt. *)
    if hardened && Recovery_report.detected_loss report then
      t.degraded <- true;
    (report, List.rev !payloads)

  let recover_txn t ~extra = recover_core t ~hardened:true ~extra
  let recover_report t = fst (recover_core t ~hardened:true ~extra:[])

  let recover t =
    let r = fst (recover_core t ~hardened:true ~extra:[]) in
    match (r.Recovery_report.disagreements, r.Recovery_report.gap_indices) with
    | d :: _, _ ->
        raise
          (Recovery_corrupt
             (Printf.sprintf "logs disagree on operation at index %d" d))
    | [], g :: _ ->
        raise
          (Recovery_corrupt
             (Printf.sprintf "operation at index %d missing from all logs" g))
    | [], [] ->
        if r.Recovery_report.decode_failures > 0 then
          raise (Recovery_corrupt "undecodable log entry")

  let recover_unhardened t =
    ignore (recover_core t ~hardened:false ~extra:[])

  (* Online self-healing (cooperative step): CRC-walk every process's log
     across its replicas, repairing divergence in place and quarantining
     double-fault spans. Fences are attributed to ["fences.scrub"], never
     to the per-update Theorem 5.1 accounting. *)
  let scrub t =
    attributed t Onll_obs.Opstats.scrub_done (fun () ->
        let r =
          Array.fold_left
            (fun acc l -> Onll_plog.Plog.add_scrub acc (L.scrub l))
            Onll_plog.Plog.clean_scrub t.logs
        in
        if r.Onll_plog.Plog.unrepairable_spans > 0 then t.degraded <- true;
        r)

  let degraded t = t.degraded

  (* {2 Detectable execution} *)

  let recovered_ops t =
    Hashtbl.fold (fun id idx acc -> (id, idx) :: acc) t.recovered []
    |> List.sort (fun (_, a) (_, b) -> compare a b)

  let was_linearized t id =
    Hashtbl.mem t.recovered id
    || (let _, base = T.base_of t.trace in
        id.id_seq < base.floors.(id.id_proc))
    || List.exists
         (fun (_, _, env) ->
           match env with
           | Some e -> e.e_proc = id.id_proc && e.e_seq = id.id_seq
           | None -> false)
         (T.to_list t.trace)

  (* {2 E19: cross-shard transaction support ({!Onll_txn})}

     The order/persist/linearize split of a single update, exposed so a
     coordinator can run each stage across several shard objects:
     [stage_txn] orders a sub-operation (insert, not yet available, no
     durable write), the coordinator then persists the whole transaction
     with one fence in its own region, and [finish_txn] linearizes each
     staged node. [inject_txn_run] is the recovery-side idempotent
     re-apply for committed sub-operations no log or oracle could place. *)

  type staged = { st_node : (envelope, istate) T.node }

  (* Allocate the next per-process sequence number without running an
     update: the coordinator fixes every sub-operation's identity before
     encoding the commit payload that embeds them. The number counts as
     used — [update_detectable] will refuse it — exactly as if an update
     had consumed it. *)
  let reserve_seq t =
    let p = M.self () in
    let seq = t.seqs.(p) in
    t.seqs.(p) <- seq + 1;
    seq

  let stage_txn t ~seq ~payload op =
    let p = M.self () in
    if seq >= t.seqs.(p) then
      invalid_arg "Onll.stage_txn: sequence number was not reserved";
    {
      st_node =
        T.insert t.trace
          { e_proc = p; e_seq = seq; e_op = op; e_txn = Some payload };
    }

  let staged_idx s = T.idx s.st_node

  let finish_txn t s =
    T.set_available s.st_node;
    let _, value = compute t s.st_node in
    match value with
    | Some v -> v
    | None -> assert false (* the staged node's own op is in the delta *)

  (* Insert, linearize and durably log a run of committed sub-operations
     during the coordinator sweep. One fenced Ops append covers the whole
     run (the inserts are back-to-back under one process, so the indices
     are contiguous as the record format requires); afterwards the
     operations are ordinary log residents and the next recovery adopts
     them without the oracle. The payload tag is dropped — the
     transaction is already known committed. *)
  let inject_txn_run t subs =
    match subs with
    | [] -> []
    | _ ->
        let envs_idx =
          List.map
            (fun (id, op) ->
              let env =
                {
                  e_proc = id.id_proc;
                  e_seq = id.id_seq;
                  e_op = op;
                  e_txn = None;
                }
              in
              let node = T.insert t.trace env in
              T.set_available node;
              if id.id_seq >= t.seqs.(id.id_proc) then
                t.seqs.(id.id_proc) <- id.id_seq + 1;
              Hashtbl.replace t.recovered id (T.idx node);
              (env, T.idx node))
            subs
        in
        let newest_first = List.rev envs_idx in
        let exec_idx = snd (List.hd newest_first) in
        let payload =
          Onll_util.Codec.encode record_codec
            (Ops { exec_idx; envs = List.map fst newest_first })
        in
        append_record t (M.self ()) payload;
        List.map snd envs_idx

  (* {2 §8: checkpointing, log compaction, trace pruning} *)

  (* Costs one persistent fence for the appended checkpoint and one for the
     durable head update (plus relocation fences only when the log was
     full). Returns the summarised index. *)
  let checkpoint t =
    attributed t Onll_obs.Opstats.checkpoint_done (fun () ->
        checkpoint_body t (M.self ()))

  let prune t ~below =
    T.prune t.trace ~below ~state_before:(fun node -> istate_at t node)

  (* {2 Introspection (tests, figures, reports)} *)

  let trace_nodes t = T.to_list t.trace

  let trace_base t =
    let i, is = T.base_of t.trace in
    (i, is.st)

  let current_state t = (istate_at t (T.latest_available t.trace)).st

  (* One durable scan per log: entries are decoded once and every derived
     statistic (counts, sizes, helping profile) comes from that pass. *)
  let snapshot t =
    let logs =
      Array.to_list t.logs
      |> List.map (fun l ->
             let ops_per_entry =
               decode_entries l
               |> List.map (function
                    | Ops { envs; _ } -> List.length envs
                    | Checkpoint _ -> 0)
             in
             {
               Snapshot.log_name = L.name l;
               live_bytes = L.live_bytes l;
               used_bytes = L.used_bytes l;
               entry_count = List.length ops_per_entry;
               ops_per_entry;
             })
    in
    {
      Snapshot.latest_available_idx = T.idx (T.latest_available t.trace);
      max_fuzzy_window = t.max_fuzzy;
      degraded = t.degraded;
      logs;
    }

end

(** The paper's construction: ONLL over the lock-free Listing 2 trace. *)
module Make (M : Onll_machine.Machine_sig.S) (S : Spec.S) =
  Make_generic (M) (Trace_adapter.Backward (M)) (S)

(** §8 extension: the same construction over the wait-free trace. Pruning
    is unsupported on this variant (see {!Wf_trace}). *)
module Make_wait_free (M : Onll_machine.Machine_sig.S) (S : Spec.S) =
  Make_generic (M) (Wf_trace.Make (M)) (S)
