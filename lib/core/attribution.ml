(** Per-operation fence attribution, shared by every object implementation.

    The paper's statements are per-operation-kind fence counts — one
    persistent fence per update (Thm 5.1), zero per read — which raw
    machine totals cannot express once processes run concurrently.
    {!Make.attributed} measures the {e invoking process's} persistent-fence
    counter around an operation body, so a process's own fences during its
    operation are exactly attributable no matter what other processes do
    meanwhile. *)

module Make (M : Onll_machine.Machine_sig.S) = struct
  (* [attributed ostats record f] runs [f ()], then records the caller's
     persistent-fence delta via [record] (one of [Opstats.update_done],
     [read_done], [checkpoint_done]). A single boolean test when [ostats]
     has no sink. *)
  let attributed ostats record f =
    if Onll_obs.Opstats.active ostats then begin
      let p = M.self () in
      let before = M.persistent_fences_by ~proc:p in
      let v = f () in
      record ostats ~fences:(M.persistent_fences_by ~proc:p - before);
      v
    end
    else f ()
end
