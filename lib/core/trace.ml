(** The transient execution trace (paper §4.1.2, Listing 2).

    A lock-free, tail-linked list of the update operations applied to the
    object, newest at the tail, each node carrying a dense execution index
    and an available flag. The suffix of nodes with unset available flags up
    to (but not including) the newest node whose flag is set is the {e fuzzy
    window}: operations whose durability and linearization are not yet
    guaranteed (Figure 2). Available flags are only ever set, never cleared.

    Extension (§8): the oldest end of the chain may be terminated by a
    {!link.Base} summarising the pruned prefix as a materialised state, which
    both bounds traversal cost and lets the garbage collector reclaim old
    nodes. A [Base (i, s)] asserts that [s] is the object state after the
    operations with indices [.. i]; any node whose [next] is a base has
    index [i + 1] (the sentinel, which carries no operation, has index [i]).

    This module is deliberately dumb about operation payloads — it stores
    ['env] envelopes — so the same trace serves every specification. *)

module Make (M : Onll_machine.Machine_sig.S) = struct
  type ('env, 'state) node = {
    env : 'env option;  (** [None] only for the sentinel *)
    mutable idx : int;  (** fixed once the node is published *)
    available : bool M.Tvar.t;
    next : ('env, 'state) link M.Tvar.t;  (** towards older operations *)
  }

  and ('env, 'state) link =
    | Older of ('env, 'state) node
    | Base of int * 'state

  type ('env, 'state) t = {
    tail : ('env, 'state) node M.Tvar.t;
    tr_sink : Onll_obs.Sink.t;
  }

  let create ?(sink = Onll_obs.Sink.null) ~base_idx ~base_state () =
    let sentinel =
      {
        env = None;
        idx = base_idx;
        available = M.Tvar.make true;
        next = M.Tvar.make (Base (base_idx, base_state));
      }
    in
    { tail = M.Tvar.make sentinel; tr_sink = sink }

  (* Listing 2, [insert]: assign the next execution index and CAS the node
     in at the tail. The [idx] and [next] writes happen before publication,
     so they are safe plain writes. *)
  let insert t env =
    let rec loop node =
      if Onll_obs.Sink.active t.tr_sink then
        Onll_obs.Sink.emit t.tr_sink ~proc:(M.self ())
          (Onll_obs.Event.Cas_retry { site = "trace.insert" });
      let ltail = M.Tvar.get t.tail in
      node.idx <- ltail.idx + 1;
      M.Tvar.set node.next (Older ltail);
      if M.Tvar.cas t.tail ~expected:ltail ~desired:node then node
      else loop node
    in
    let ltail = M.Tvar.get t.tail in
    let node =
      {
        env = Some env;
        idx = ltail.idx + 1;
        available = M.Tvar.make false;
        next = M.Tvar.make (Older ltail);
      }
    in
    if M.Tvar.cas t.tail ~expected:ltail ~desired:node then node
    else loop node

  let tail t = M.Tvar.get t.tail

  (* Listing 2, [latestAvailable]: first node with a set available flag,
     walking from the given node towards older operations. Total: available
     flags are never cleared and every chain ends in an available node (the
     sentinel or a prune point, which is available by construction). *)
  let rec latest_available_from node =
    if M.Tvar.get node.available then node
    else
      match M.Tvar.get node.next with
      | Older older -> latest_available_from older
      | Base _ ->
          (* Unreachable: a node whose [next] is a base is available. *)
          assert false

  let latest_available t = latest_available_from (tail t)

  (* Listing 2, [getFuzzyOps]: the envelopes of [node] and of the
     not-yet-available operations preceding it, newest first. Indices are
     contiguous and descending from [node.idx]. Bounded by MAX-PROCESSES
     (Proposition 5.2). *)
  let fuzzy_envs node =
    let rec walk curr acc =
      if M.Tvar.get curr.available then List.rev acc
      else
        let acc =
          match curr.env with
          | Some e -> e :: acc
          | None -> acc
        in
        match M.Tvar.get curr.next with
        | Older older -> walk older acc
        | Base _ -> assert false
    in
    walk node []

  (* Operations strictly newer than [floor] needed to reach [node]'s state:
     returns the starting state and the envelopes to apply, oldest first.
     [floor], when given, is a (index, state) pair the caller already
     knows (a local view, §8); the walk stops there if reached before the
     chain's base. *)
  let delta_from ?floor node =
    let rec walk curr acc =
      match floor with
      | Some (fi, fs) when curr.idx <= fi -> (fs, acc)
      | _ -> (
          let acc =
            match curr.env with Some e -> (curr.idx, e) :: acc | None -> acc
          in
          match M.Tvar.get curr.next with
          | Base (_, bstate) -> (bstate, acc)
          | Older older -> walk older acc)
    in
    walk node []

  (* All reachable nodes, oldest first, for recovery checks and tests. *)
  let to_list t =
    let rec walk curr acc =
      let acc =
        (curr.idx, M.Tvar.get curr.available, curr.env) :: acc
      in
      match M.Tvar.get curr.next with
      | Base _ -> acc
      | Older older -> walk older acc
    in
    walk (tail t) []

  let base_of t =
    let rec walk curr =
      match M.Tvar.get curr.next with
      | Base (i, s) -> (i, s)
      | Older older -> walk older
    in
    walk (tail t)

  (* §8 pruning: make nodes with index < [below] unreachable by installing a
     base summarising them. Requires the node at [below] to exist and be
     available (so no fuzzy-window or latest-available walk can need the
     pruned prefix), and a state function to materialise the summary. *)
  let prune t ~below ~state_before =
    let rec find curr =
      if curr.idx = below then Some curr
      else if curr.idx < below then None
      else
        match M.Tvar.get curr.next with
        | Older older -> find older
        | Base _ -> None
    in
    match find (tail t) with
    | None -> invalid_arg "Trace.prune: no node at index"
    | Some node -> (
        if not (M.Tvar.get node.available) then
          invalid_arg "Trace.prune: node not yet available";
        match M.Tvar.get node.next with
        | Base _ -> ()  (* already pruned here (or further) *)
        | Older older ->
            let s = state_before older in
            M.Tvar.set node.next (Base (node.idx - 1, s)))
end
