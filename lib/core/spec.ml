(** Deterministic sequential object specifications.

    The universal construction turns any module of this signature into a
    lock-free durably linearizable object. The paper's model (§2.2) defines
    the state of an object as the sequence of update operations applied to
    it, with a [compute] method giving each operation's return value; here
    that is split into an explicit state type with [apply] (updates: new
    state + return value) and [read] (read-only operations: return value
    only), which is equivalent and lets implementations checkpoint states.

    Update operations must be deterministic: applying the same operations in
    the same order always yields the same state and values. [apply] and
    [read] must be pure. *)

module type S = sig
  type state
  type update_op
  type read_op
  type value

  val name : string
  (** Short identifier, used in region names and reports. *)

  val shard_of_update : shards:int -> update_op -> int
  (** Partitioning interface (E14): the shard, in [0 .. shards-1], this
      update routes to. Must be a pure function of the operation — the
      router is consulted again after a crash, so [shard_of_update] {e is}
      the durable placement function. Specifications without a natural key
      (counter, queue, stack, …) return [0]: the sharded construction then
      degenerates to a single active shard, which is always correct. *)

  val shard_of_read : shards:int -> read_op -> int option
  (** [Some s] routes the read-only operation to shard [s] alone (e.g. a
      kv [Get] routes to its key's shard); [None] marks a {e global} read
      that must consult every shard, with the per-shard answers combined
      by {!merge_read}. *)

  val merge_read : read_op -> value list -> value
  (** Combine the per-shard answers of a global read ([shard_of_read] =
      [None]), given in shard order. Must be associative-friendly for the
      operation's semantics (sums of sizes, unions of answers, …); only
      ever called with [shards >= 1] answers. *)

  val initial : state
  (** The state produced by INITIALIZE. *)

  val apply : state -> update_op -> state * value
  (** Sequential semantics of an update: the new state and the value
      returned to the invoking process. *)

  val read : state -> read_op -> value
  (** Sequential semantics of a read-only operation. *)

  val update_codec : update_op Onll_util.Codec.t
  (** Serialization for persisting operations in the log. *)

  val state_codec : state Onll_util.Codec.t
  (** Serialization for checkpointing states (log compaction, §8). *)

  val equal_state : state -> state -> bool
  val equal_value : value -> value -> bool
  val pp_update : Format.formatter -> update_op -> unit
  val pp_read : Format.formatter -> read_op -> unit
  val pp_value : Format.formatter -> value -> unit
end

(** Deterministic, OCaml-version-independent string shard router (FNV-1a):
    the same key maps to the same shard on every run, every compiler and
    every post-crash recovery — [Hashtbl.hash] promises none of that. *)
let string_shard ~shards key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    key;
  !h mod max shards 1

(** Integer shard router: folded multiplicative hash, so adjacent keys do
    not all land on adjacent shards. *)
let int_shard ~shards k =
  (k * 0x2545F491 land 0x3FFFFFFF) mod max shards 1
