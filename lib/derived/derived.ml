(** Ready-made durable data structures.

    The universal construction works on any {!Onll_core.Spec.S}, but its
    values are spec-level variants ([Taken (Some 3)], [Previous None], ...).
    These wrappers give each stock specification the API you would expect
    from a library type — typed operations, ordinary return types — while
    everything underneath is the same lock-free durably linearizable ONLL
    object: one persistent fence per mutation, none per read, crash
    recovery via [recover], detectability via the underlying construction.

    Every wrapper is a functor over the machine, so the same code runs on
    the simulator (for crash testing) and on native domains. [~wait_free]
    selects the Kogan–Petrank trace variant (§8). *)

open Onll_machine

module Counter (M : Machine_sig.S) = struct
  module Spec = Onll_specs.Counter
  module Lf = Onll_core.Onll.Make (M) (Spec)
  module Wf = Onll_core.Onll.Make_wait_free (M) (Spec)

  type t = Lf_obj of Lf.t | Wf_obj of Wf.t

  let create ?(wait_free = false) ?log_capacity ?local_views () =
    let d = Onll_core.Onll.Config.default in
    let cfg =
      {
        d with
        Onll_core.Onll.Config.log_capacity =
          Option.value log_capacity ~default:d.Onll_core.Onll.Config.log_capacity;
        local_views =
          Option.value local_views ~default:d.Onll_core.Onll.Config.local_views;
      }
    in
    if wait_free then Wf_obj (Wf.make cfg) else Lf_obj (Lf.make cfg)

  let incr = function
    | Lf_obj o -> Lf.update o Spec.Increment
    | Wf_obj o -> Wf.update o Spec.Increment

  let add t k =
    match t with
    | Lf_obj o -> Lf.update o (Spec.Add k)
    | Wf_obj o -> Wf.update o (Spec.Add k)

  let get = function
    | Lf_obj o -> Lf.read o Spec.Get
    | Wf_obj o -> Wf.read o Spec.Get

  let recover = function Lf_obj o -> Lf.recover o | Wf_obj o -> Wf.recover o

  let checkpoint = function
    | Lf_obj o -> Lf.checkpoint o
    | Wf_obj o -> Wf.checkpoint o
end

module Kv (M : Machine_sig.S) = struct
  module Spec = Onll_specs.Kv
  module C = Onll_core.Onll.Make (M) (Spec)

  type t = C.t

  let create ?log_capacity ?local_views () =
    let d = Onll_core.Onll.Config.default in
    C.make
      {
        d with
        Onll_core.Onll.Config.log_capacity =
          Option.value log_capacity ~default:d.Onll_core.Onll.Config.log_capacity;
        local_views =
          Option.value local_views ~default:d.Onll_core.Onll.Config.local_views;
      }

  let put t k v =
    match C.update t (Spec.Put (k, v)) with
    | Spec.Previous prev -> prev
    | Spec.Found _ | Spec.Count _ -> assert false

  let delete t k =
    match C.update t (Spec.Delete k) with
    | Spec.Previous prev -> prev
    | Spec.Found _ | Spec.Count _ -> assert false

  let get t k =
    match C.read t (Spec.Get k) with
    | Spec.Found v -> v
    | Spec.Previous _ | Spec.Count _ -> assert false

  let size t =
    match C.read t Spec.Size with
    | Spec.Count n -> n
    | Spec.Previous _ | Spec.Found _ -> assert false

  let recover = C.recover
  let checkpoint = C.checkpoint
  let was_linearized = C.was_linearized
end

module Queue (M : Machine_sig.S) = struct
  module Spec = Onll_specs.Queue_spec
  module C = Onll_core.Onll.Make (M) (Spec)

  type t = C.t

  let create ?log_capacity ?local_views () =
    let d = Onll_core.Onll.Config.default in
    C.make
      {
        d with
        Onll_core.Onll.Config.log_capacity =
          Option.value log_capacity ~default:d.Onll_core.Onll.Config.log_capacity;
        local_views =
          Option.value local_views ~default:d.Onll_core.Onll.Config.local_views;
      }

  let enqueue t x =
    match C.update t (Spec.Enqueue x) with
    | Spec.Nothing -> ()
    | Spec.Taken _ | Spec.Len _ -> assert false

  let dequeue t =
    match C.update t Spec.Dequeue with
    | Spec.Taken v -> v
    | Spec.Nothing | Spec.Len _ -> assert false

  let peek t =
    match C.read t Spec.Peek with
    | Spec.Taken v -> v
    | Spec.Nothing | Spec.Len _ -> assert false

  let length t =
    match C.read t Spec.Length with
    | Spec.Len n -> n
    | Spec.Nothing | Spec.Taken _ -> assert false

  let recover = C.recover
  let checkpoint = C.checkpoint
end

module Stack (M : Machine_sig.S) = struct
  module Spec = Onll_specs.Stack_spec
  module C = Onll_core.Onll.Make (M) (Spec)

  type t = C.t

  let create ?log_capacity ?local_views () =
    let d = Onll_core.Onll.Config.default in
    C.make
      {
        d with
        Onll_core.Onll.Config.log_capacity =
          Option.value log_capacity ~default:d.Onll_core.Onll.Config.log_capacity;
        local_views =
          Option.value local_views ~default:d.Onll_core.Onll.Config.local_views;
      }

  let push t x =
    match C.update t (Spec.Push x) with
    | Spec.Nothing -> ()
    | Spec.Taken _ | Spec.Count _ -> assert false

  let pop t =
    match C.update t Spec.Pop with
    | Spec.Taken v -> v
    | Spec.Nothing | Spec.Count _ -> assert false

  let top t =
    match C.read t Spec.Top with
    | Spec.Taken v -> v
    | Spec.Nothing | Spec.Count _ -> assert false

  let depth t =
    match C.read t Spec.Depth with
    | Spec.Count n -> n
    | Spec.Nothing | Spec.Taken _ -> assert false

  let recover = C.recover
end

module Set (M : Machine_sig.S) = struct
  module Spec = Onll_specs.Set_spec
  module C = Onll_core.Onll.Make (M) (Spec)

  type t = C.t

  let create ?log_capacity ?local_views () =
    let d = Onll_core.Onll.Config.default in
    C.make
      {
        d with
        Onll_core.Onll.Config.log_capacity =
          Option.value log_capacity ~default:d.Onll_core.Onll.Config.log_capacity;
        local_views =
          Option.value local_views ~default:d.Onll_core.Onll.Config.local_views;
      }

  let insert t x =
    match C.update t (Spec.Insert x) with
    | Spec.Changed b -> b
    | Spec.Member _ | Spec.Count _ -> assert false

  let remove t x =
    match C.update t (Spec.Remove x) with
    | Spec.Changed b -> b
    | Spec.Member _ | Spec.Count _ -> assert false

  let mem t x =
    match C.read t (Spec.Contains x) with
    | Spec.Member b -> b
    | Spec.Changed _ | Spec.Count _ -> assert false

  let cardinal t =
    match C.read t Spec.Cardinal with
    | Spec.Count n -> n
    | Spec.Changed _ | Spec.Member _ -> assert false

  let recover = C.recover
end

module Pqueue (M : Machine_sig.S) = struct
  module Spec = Onll_specs.Pqueue
  module C = Onll_core.Onll.Make (M) (Spec)

  type t = C.t

  let create ?log_capacity ?local_views () =
    let d = Onll_core.Onll.Config.default in
    C.make
      {
        d with
        Onll_core.Onll.Config.log_capacity =
          Option.value log_capacity ~default:d.Onll_core.Onll.Config.log_capacity;
        local_views =
          Option.value local_views ~default:d.Onll_core.Onll.Config.local_views;
      }

  let insert t ~prio x =
    match C.update t (Spec.Insert (prio, x)) with
    | Spec.Nothing -> ()
    | Spec.Min _ | Spec.Count _ -> assert false

  let extract_min t =
    match C.update t Spec.Extract_min with
    | Spec.Min v -> v
    | Spec.Nothing | Spec.Count _ -> assert false

  let find_min t =
    match C.read t Spec.Find_min with
    | Spec.Min v -> v
    | Spec.Nothing | Spec.Count _ -> assert false

  let size t =
    match C.read t Spec.Size with
    | Spec.Count n -> n
    | Spec.Nothing | Spec.Min _ -> assert false

  let recover = C.recover
end

module Ledger (M : Machine_sig.S) = struct
  module Spec = Onll_specs.Ledger
  module C = Onll_core.Onll.Make (M) (Spec)

  type t = C.t

  exception Rejected of string

  let create ?log_capacity ?local_views () =
    let d = Onll_core.Onll.Config.default in
    C.make
      {
        d with
        Onll_core.Onll.Config.log_capacity =
          Option.value log_capacity ~default:d.Onll_core.Onll.Config.log_capacity;
        local_views =
          Option.value local_views ~default:d.Onll_core.Onll.Config.local_views;
      }

  let lift = function
    | Spec.Ok_v -> Ok ()
    | Spec.Rejected r -> Error r
    | Spec.Amount _ | Spec.Names _ -> assert false

  let open_account t a = lift (C.update t (Spec.Open a))
  let deposit t a n = lift (C.update t (Spec.Deposit (a, n)))
  let withdraw t a n = lift (C.update t (Spec.Withdraw (a, n)))

  let transfer t ~from_ ~to_ n =
    lift (C.update t (Spec.Transfer (from_, to_, n)))

  let balance t a =
    match C.read t (Spec.Balance a) with
    | Spec.Amount v -> v
    | Spec.Ok_v | Spec.Rejected _ | Spec.Names _ -> assert false

  let total t =
    match C.read t Spec.Total with
    | Spec.Amount (Some v) -> v
    | Spec.Amount None | Spec.Ok_v | Spec.Rejected _ | Spec.Names _ ->
        assert false

  let accounts t =
    match C.read t Spec.Accounts with
    | Spec.Names l -> l
    | Spec.Ok_v | Spec.Rejected _ | Spec.Amount _ -> assert false

  let recover = C.recover
  let checkpoint = C.checkpoint
end
