(** Deterministic, seedable media-fault injection for the simulated NVM.

    The clean crash model ({!Onll_nvm.Crash_policy}) resolves only cache
    nondeterminism: fenced bytes are always intact and only the log tail
    can be torn. Real persistent-memory systems additionally suffer

    {ul
    {- {b bit rot}: durable bytes flipping, anywhere — including the
       middle of a log, not just its tail;}
    {- {b torn media writes}: a span of durable bytes replaced by garbage
       (a multi-line write cut mid-way at power loss);}
    {- {b transient flush/fence failures}: the instruction faults without
       effect and must be retried;}
    {- {b crashes during recovery}: power lost again while recovery is
       repairing the previous crash.}}

    A {!Plan.t} describes how much of each to inject; {!install} compiles
    it into {!Onll_nvm.Memory.hooks} driven by a SplitMix stream, so a
    given (plan, program) pair replays byte-for-byte. Media corruption is
    applied at crash time (inside {!Onll_nvm.Memory.crash}), which is when
    real media tears; transient faults fire on the flush/fence hot path;
    nested crashes are {e armed} explicitly by the recovery harness with
    {!arm_recovery_crash} and fire as {!Onll_nvm.Memory.Injected_crash}
    after a chosen number of durable-memory operations.

    Every injection emits a {!Onll_obs.Event.Fault_injected} event to the
    memory's sink and bumps a handle counter, so campaigns can report
    exactly what they subjected the system to. *)

module Plan : sig
  type t = {
    seed : int;  (** drives every random choice below *)
    bit_flips_per_crash : int;
        (** random single-bit flips in durable bytes at each media-faulty
            crash *)
    torn_spans_per_crash : int;
        (** random garbage spans in durable bytes at each media-faulty
            crash *)
    torn_span_max_bytes : int;  (** max length of one torn span *)
    media_window : int;
        (** corruption offsets are drawn from [0, min media_window size) of
            each region — biases faults into the populated prefix of large,
            mostly-empty regions; [max_int] for whole-region faults *)
    media_fault_crashes : int;
        (** only the first [n] crashes corrupt media (lets nested-crash
            loops converge instead of degrading forever) *)
    flush_fail_prob : float;  (** transient failure probability per flush *)
    fence_fail_prob : float;  (** transient failure probability per fence *)
    max_consecutive_transients : int;
        (** cap on back-to-back transient failures, so bounded retry always
            eventually succeeds *)
    rot_ops_interval : int;
        (** online bit rot: every [n]-th durable-memory operation flips one
            random bit in one eligible region {e while the system runs}
            (crash-time corruption never exercises the online scrubber);
            [0] disables *)
    target : string -> bool;
        (** regions eligible for media corruption {e and} transient flush
            failures (fence transients are machine-global: a fence drains
            every pending line, so it has no single region to scope by).
            Mirrored logs name their replicas with
            {!Onll_plog.Plog.replica_region_name}, so per-replica fault
            scopes are name predicates — e.g.
            [fun n -> not (Onll_plog.Plog.is_mirror_region n)] confines
            damage to primaries, the scope mirrors provably heal *)
  }

  val none : t
  (** Injects nothing; the identity plan to override from. *)

  val default : seed:int -> t
  (** A moderate chaos plan: 2 bit flips + 1 torn span (≤ 48 bytes) within
      the first 512 bytes of every eligible region on the first crash, 5%
      transient flush/fence failures (≤ 2 consecutive), all regions
      eligible. *)
end

type t
(** An installed fault injector: the handle for arming nested crashes and
    reading injection counters. *)

val install : Onll_nvm.Memory.t -> Plan.t -> t
(** Compile [plan] and install it as the memory system's fault hooks
    (replacing any previous hooks). *)

val remove : t -> unit
(** Uninstall the hooks (the handle's counters remain readable). *)

val arm_recovery_crash : t -> at_op:int -> unit
(** Arm a one-shot nested crash: the [at_op]-th durable-memory operation
    from now (0 = the very next one) raises
    {!Onll_nvm.Memory.Injected_crash} after emitting a
    [Recovery_interrupted] event. Re-arming replaces the previous arming.
    The caller is responsible for actually calling
    {!Onll_nvm.Memory.crash} when it catches the exception — the raise
    models the power cut, the catch models the reboot. *)

val disarm : t -> unit
(** Cancel a pending armed crash, if any. *)

val armed : t -> bool

val set_rot : t -> bool -> unit
(** Enable/disable the online-rot injector at runtime (enabled on
    install). Harnesses pause it around recovery: runtime rot is the
    {e scrubber's} regime, while recovery adversity is modelled by
    crash-time corruption, transient flush/fence failures and armed nested
    crashes — rot landing in the instants between a log's salvage and its
    replay would make any strict zero-loss claim vacuous. *)

(** {1 Injection counters} *)

type counters = {
  bit_flips : int;
  torn_spans : int;
  rot_flips : int;  (** online rot flips injected while running *)
  flush_transients : int;
  fence_transients : int;
  recovery_crashes : int;  (** armed nested crashes that fired *)
}

val counters : t -> counters
val total : counters -> int

val pp_counters : Format.formatter -> counters -> unit

(** {1 File-backend fault injection}

    The real-media failure model for {!Onll_nvm.File_memory}: everything a
    file store suffers that the simulator cannot — short/torn sector
    writes, [fsync] returning [EIO] with fsyncgate page loss, disk-full,
    and the process being killed mid-fence. A {!File_plan.t} embeds a
    {!Plan.t} whose transient flush/fence probabilities (with their
    [target] scoping and consecutive-failure cap) are rolled with {e the
    same discipline and draw order} as the sim installer, from a fresh
    SplitMix stream seeded by the plan — so one plan produces identical
    transient injection sites on both backends (asserted by the parity
    test in [test_faults.ml]). Crash-time media corruption and online rot
    do not apply: on real files "the crash" is the kill itself, and what
    the media then holds is whatever the interrupted write-back left. *)

module File_plan : sig
  type kill_mode =
    | Sigkill  (** [kill -9] the calling process — subprocess harness *)
    | Raise
        (** raise {!Onll_nvm.Memory.Injected_crash} — deterministic
            in-process restart tests catch it, close the store, reopen *)

  type t = {
    base : Plan.t;
        (** transient flush/fence probabilities, seed, scoping; the media
            corruption fields are ignored on this backend *)
    short_write_prob : float;
        (** per sector [pwrite]: land only a random prefix of the sector,
            failing the write-back attempt (bounded retry re-writes) *)
    fsync_eio_from : int;
        (** 1-based index of the first [fsync] call that returns [EIO];
            [0] = never *)
    fsync_eio_count : int;  (** how many consecutive fsyncs fail *)
    drop_pages_on_eio : bool;
        (** fsyncgate: the failed fsync also loses this attempt's writes
            (reverted to pre-images), so only a full re-write can recover *)
    enospc_at_write : int;
        (** the [n]-th sector write (1-based) raises [ENOSPC]; [0] = never *)
    kill_at_fence : int;
        (** the [n]-th {e persistent} fence attempt (1-based) gets the
            kill; [0] = never *)
    kill_after_sectors : int;
        (** where inside that fence: [0] = before any write, [n > 0] =
            after [n] sector writes (falling through to the fsync point
            when the fence writes fewer), [-1] = at the fsync point *)
    kill_mode : kill_mode;
  }

  val none : t
end

type file_t
(** An installed file-backend injector. *)

val install_file : Onll_nvm.File_memory.t -> File_plan.t -> file_t
(** Compile the plan into {!Onll_nvm.File_memory.hooks} and install it. *)

val remove_file : file_t -> unit

type file_counters = {
  f_flush_transients : int;
  f_fence_transients : int;
  f_short_writes : int;
  f_eio_injected : int;
  f_enospc_injected : int;
  f_kills_fired : int;
      (** with [Raise] mode this counts; with [Sigkill] the process dies
          before anyone reads it *)
}

val file_counters : file_t -> file_counters
val file_total : file_counters -> int
