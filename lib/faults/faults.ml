(* Deterministic media-fault injection. See faults.mli for the model. *)

module Memory = Onll_nvm.Memory
module Splitmix = Onll_util.Splitmix
module Event = Onll_obs.Event
module Sink = Onll_obs.Sink

module Plan = struct
  type t = {
    seed : int;
    bit_flips_per_crash : int;
    torn_spans_per_crash : int;
    torn_span_max_bytes : int;
    media_window : int;
    media_fault_crashes : int;
    flush_fail_prob : float;
    fence_fail_prob : float;
    max_consecutive_transients : int;
    rot_ops_interval : int;
    target : string -> bool;
  }

  let none =
    {
      seed = 0;
      bit_flips_per_crash = 0;
      torn_spans_per_crash = 0;
      torn_span_max_bytes = 0;
      media_window = max_int;
      media_fault_crashes = 0;
      flush_fail_prob = 0.;
      fence_fail_prob = 0.;
      max_consecutive_transients = 0;
      rot_ops_interval = 0;
      target = (fun _ -> true);
    }

  let default ~seed =
    {
      seed;
      bit_flips_per_crash = 2;
      torn_spans_per_crash = 1;
      torn_span_max_bytes = 48;
      media_window = 512;
      media_fault_crashes = 1;
      flush_fail_prob = 0.05;
      fence_fail_prob = 0.05;
      max_consecutive_transients = 2;
      rot_ops_interval = 0;
      target = (fun _ -> true);
    }
end

type t = {
  plan : Plan.t;
  mem : Memory.t;
  rng : Splitmix.t;
  mutable bit_flips : int;
  mutable torn_spans : int;
  mutable rot_flips : int;
  mutable flush_transients : int;
  mutable fence_transients : int;
  mutable recovery_crashes : int;
  mutable crashes_seen : int;
  mutable ops_seen : int;  (* durable-memory ops, drives rot *)
  mutable rot_enabled : bool;  (* harnesses pause rot around recovery *)
  mutable consecutive : int;  (* back-to-back transient failures *)
  mutable fuse : int option;  (* armed nested crash: ops until it fires *)
  mutable armed_at : int;  (* the at_op value the fuse was armed with *)
}

let emit t fault =
  let sink = Memory.sink t.mem in
  if Sink.active sink then
    Sink.emit sink ~proc:(-1) (Event.Fault_injected { fault })

(* Transient failures: fail with the plan's probability, but never more
   than [max_consecutive_transients] in a row, so a bounded retry loop is
   guaranteed to make progress. *)
let transient t prob =
  prob > 0.
  && t.consecutive < t.plan.max_consecutive_transients
  && Splitmix.float t.rng 1.0 < prob

let corrupt_media t =
  let regions =
    List.filter t.plan.target (Memory.region_names t.mem)
    |> List.filter_map (Memory.find_region t.mem)
  in
  List.iter
    (fun r ->
      let window = min t.plan.media_window (Memory.Region.size r) in
      if window > 0 then begin
        for _ = 1 to t.plan.bit_flips_per_crash do
          let off = Splitmix.int t.rng window in
          let bit = Splitmix.int t.rng 8 in
          Memory.Region.corrupt r ~off ~len:1 ~f:(fun _ c ->
              Char.chr (Char.code c lxor (1 lsl bit)));
          t.bit_flips <- t.bit_flips + 1;
          emit t "bitflip"
        done;
        for _ = 1 to t.plan.torn_spans_per_crash do
          let len = 1 + Splitmix.int t.rng (max 1 t.plan.torn_span_max_bytes) in
          let len = min len window in
          let off = Splitmix.int t.rng (window - len + 1) in
          Memory.Region.corrupt r ~off ~len ~f:(fun _ _ ->
              Char.chr (Splitmix.int t.rng 256));
          t.torn_spans <- t.torn_spans + 1;
          emit t "torn"
        done
      end)
    regions

(* Online bit rot: one random bit flip in one eligible region, fired while
   the system is RUNNING (not at crash time) — the damage the online
   scrubber exists to heal before a crash forces recovery to. Corruption
   goes straight to durable bytes behind the cache, so a dirty cached line
   can still overwrite it: exactly real rot's semantics. *)
let rot_media t =
  let regions =
    List.filter t.plan.Plan.target (Memory.region_names t.mem)
    |> List.filter_map (Memory.find_region t.mem)
  in
  match regions with
  | [] -> ()
  | _ ->
      let r = List.nth regions (Splitmix.int t.rng (List.length regions)) in
      let window = min t.plan.Plan.media_window (Memory.Region.size r) in
      if window > 0 then begin
        let off = Splitmix.int t.rng window in
        let bit = Splitmix.int t.rng 8 in
        Memory.Region.corrupt r ~off ~len:1 ~f:(fun _ c ->
            Char.chr (Char.code c lxor (1 lsl bit)));
        t.rot_flips <- t.rot_flips + 1;
        emit t "rot"
      end

let install mem plan =
  let t =
    {
      plan;
      mem;
      rng = Splitmix.create plan.Plan.seed;
      bit_flips = 0;
      torn_spans = 0;
      rot_flips = 0;
      flush_transients = 0;
      fence_transients = 0;
      recovery_crashes = 0;
      crashes_seen = 0;
      ops_seen = 0;
      rot_enabled = true;
      consecutive = 0;
      fuse = None;
      armed_at = 0;
    }
  in
  let h_op (_ : Memory.op_kind) =
    if plan.Plan.rot_ops_interval > 0 && t.rot_enabled then begin
      t.ops_seen <- t.ops_seen + 1;
      if t.ops_seen mod plan.Plan.rot_ops_interval = 0 then rot_media t
    end;
    match t.fuse with
    | None -> ()
    | Some 0 ->
        t.fuse <- None;
        t.recovery_crashes <- t.recovery_crashes + 1;
        let sink = Memory.sink t.mem in
        if Sink.active sink then begin
          Sink.emit sink ~proc:(-1)
            (Event.Fault_injected { fault = "recovery_crash" });
          Sink.emit sink ~proc:(-1)
            (Event.Recovery_interrupted { at_op = t.armed_at })
        end;
        raise Memory.Injected_crash
    | Some n -> t.fuse <- Some (n - 1)
  in
  (* Only an instruction that could have failed resets the consecutive
     counter: a prob-0 hook firing between two failing ones (the flush
     between a failing fence's retries) must not defeat the cap. *)
  let h_flush ~proc:_ ~region =
    (* [target] scopes flush transients like media faults; an untargeted
       region's flush could not have failed, so (per the comment above) it
       must not reset the consecutive counter either. *)
    if plan.Plan.target region then
      if transient t plan.Plan.flush_fail_prob then begin
        t.flush_transients <- t.flush_transients + 1;
        t.consecutive <- t.consecutive + 1;
        emit t "flush_transient";
        raise (Memory.Transient_fault "flush")
      end
      else if plan.Plan.flush_fail_prob > 0. then t.consecutive <- 0
  in
  let h_fence ~proc:_ ~pending:_ =
    if transient t plan.Plan.fence_fail_prob then begin
      t.fence_transients <- t.fence_transients + 1;
      t.consecutive <- t.consecutive + 1;
      emit t "fence_transient";
      raise (Memory.Transient_fault "fence")
    end
    else if plan.Plan.fence_fail_prob > 0. then t.consecutive <- 0
  in
  let h_crash () =
    t.crashes_seen <- t.crashes_seen + 1;
    if t.crashes_seen <= plan.Plan.media_fault_crashes then corrupt_media t
  in
  Memory.set_hooks mem (Some { Memory.h_op; h_flush; h_fence; h_crash });
  t

let remove t = Memory.set_hooks t.mem None
let arm_recovery_crash t ~at_op =
  if at_op < 0 then invalid_arg "Faults.arm_recovery_crash: at_op < 0";
  t.fuse <- Some at_op;
  t.armed_at <- at_op

let disarm t = t.fuse <- None
let armed t = t.fuse <> None
let set_rot t enabled = t.rot_enabled <- enabled

type counters = {
  bit_flips : int;
  torn_spans : int;
  rot_flips : int;
  flush_transients : int;
  fence_transients : int;
  recovery_crashes : int;
}

let counters (t : t) : counters =
  {
    bit_flips = t.bit_flips;
    torn_spans = t.torn_spans;
    rot_flips = t.rot_flips;
    flush_transients = t.flush_transients;
    fence_transients = t.fence_transients;
    recovery_crashes = t.recovery_crashes;
  }

let total c =
  c.bit_flips + c.torn_spans + c.rot_flips + c.flush_transients
  + c.fence_transients + c.recovery_crashes

let pp_counters ppf c =
  Format.fprintf ppf
    "@[<h>bit_flips=%d torn_spans=%d rot_flips=%d flush_transients=%d \
     fence_transients=%d recovery_crashes=%d@]"
    c.bit_flips c.torn_spans c.rot_flips c.flush_transients
    c.fence_transients c.recovery_crashes

(* {2 File-backend fault injection} *)

module File_memory = Onll_nvm.File_memory

module File_plan = struct
  type kill_mode = Sigkill | Raise

  type t = {
    base : Plan.t;
    short_write_prob : float;
    fsync_eio_from : int;
    fsync_eio_count : int;
    drop_pages_on_eio : bool;
    enospc_at_write : int;
    kill_at_fence : int;
    kill_after_sectors : int;
    kill_mode : kill_mode;
  }

  let none =
    {
      base = Plan.none;
      short_write_prob = 0.;
      fsync_eio_from = 0;
      fsync_eio_count = 0;
      drop_pages_on_eio = true;
      enospc_at_write = 0;
      kill_at_fence = 0;
      kill_after_sectors = -1;
      kill_mode = Sigkill;
    }
end

type file_t = {
  fplan : File_plan.t;
  fmem : File_memory.t;
  frng : Splitmix.t;
  mutable f_consecutive : int;
  mutable f_flush_transients : int;
  mutable f_fence_transients : int;
  mutable f_short_writes : int;
  mutable f_eio_injected : int;
  mutable f_enospc_injected : int;
  mutable f_kills_fired : int;
  mutable pfence_attempts : int;  (* fences seen with pending > 0 *)
  mutable killing_this_fence : bool;
  mutable sectors_this_fence : int;
  mutable fsyncs_seen : int;
  mutable writes_seen : int;
}

let femit t fault =
  let sink = File_memory.sink t.fmem in
  if Sink.active sink then
    Sink.emit sink ~proc:(-1) (Event.Fault_injected { fault })

(* Same roll discipline as the sim installer ([transient] above): fail
   with the plan's probability, never more than [max_consecutive] in a
   row, and only instructions that could have failed touch the counter.
   The parity test drives one Plan through both installers and asserts
   the injection sites coincide, so this must draw from its own fresh
   SplitMix stream in exactly the sim's order. *)
let ftransient t prob =
  prob > 0.
  && t.f_consecutive < t.fplan.File_plan.base.Plan.max_consecutive_transients
  && Splitmix.float t.frng 1.0 < prob

let fire_kill t where =
  t.f_kills_fired <- t.f_kills_fired + 1;
  femit t ("kill_" ^ where);
  match t.fplan.File_plan.kill_mode with
  | File_plan.Sigkill ->
      (* flush stdio so the supervisor sees every line acked before the
         cut — the kill models power loss to the process, not to already
         written pipes *)
      flush stdout;
      flush stderr;
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | File_plan.Raise -> raise Memory.Injected_crash

let install_file fmem (fplan : File_plan.t) =
  let base = fplan.File_plan.base in
  let t =
    {
      fplan;
      fmem;
      frng = Splitmix.create base.Plan.seed;
      f_consecutive = 0;
      f_flush_transients = 0;
      f_fence_transients = 0;
      f_short_writes = 0;
      f_eio_injected = 0;
      f_enospc_injected = 0;
      f_kills_fired = 0;
      pfence_attempts = 0;
      killing_this_fence = false;
      sectors_this_fence = 0;
      fsyncs_seen = 0;
      writes_seen = 0;
    }
  in
  let h_op (_ : Memory.op_kind) = () in
  let h_flush ~proc:_ ~region =
    if base.Plan.target region then
      if ftransient t base.Plan.flush_fail_prob then begin
        t.f_flush_transients <- t.f_flush_transients + 1;
        t.f_consecutive <- t.f_consecutive + 1;
        femit t "flush_transient";
        raise (Memory.Transient_fault "flush")
      end
      else if base.Plan.flush_fail_prob > 0. then t.f_consecutive <- 0
  in
  let h_fence ~proc:_ ~pending =
    if ftransient t base.Plan.fence_fail_prob then begin
      t.f_fence_transients <- t.f_fence_transients + 1;
      t.f_consecutive <- t.f_consecutive + 1;
      femit t "fence_transient";
      raise (Memory.Transient_fault "fence")
    end
    else if base.Plan.fence_fail_prob > 0. then t.f_consecutive <- 0;
    (* Persistent-fence attempts drive the seeded kill: the [n]-th fence
       that will actually write gets the cut, either mid-write (after
       [kill_after_sectors] sector pwrites) or right at its fsync. *)
    if pending > 0 then begin
      t.pfence_attempts <- t.pfence_attempts + 1;
      t.sectors_this_fence <- 0;
      t.killing_this_fence <-
        fplan.File_plan.kill_at_fence > 0
        && t.pfence_attempts = fplan.File_plan.kill_at_fence;
      if t.killing_this_fence && fplan.File_plan.kill_after_sectors = 0 then
        fire_kill t "before_write"
    end
  in
  let h_write ~region:_ ~sector:_ ~len =
    t.writes_seen <- t.writes_seen + 1;
    if
      fplan.File_plan.enospc_at_write > 0
      && t.writes_seen = fplan.File_plan.enospc_at_write
    then begin
      t.f_enospc_injected <- t.f_enospc_injected + 1;
      femit t "enospc";
      raise (Unix.Unix_error (Unix.ENOSPC, "write", "injected"))
    end;
    if t.killing_this_fence && fplan.File_plan.kill_after_sectors > 0 then begin
      t.sectors_this_fence <- t.sectors_this_fence + 1;
      if t.sectors_this_fence > fplan.File_plan.kill_after_sectors then
        fire_kill t "mid_write"
    end;
    if
      fplan.File_plan.short_write_prob > 0.
      && Splitmix.float t.frng 1.0 < fplan.File_plan.short_write_prob
    then begin
      t.f_short_writes <- t.f_short_writes + 1;
      femit t "short_write";
      Splitmix.int t.frng (max 1 len)
    end
    else len
  in
  let h_fsync ~region:_ =
    (* an armed kill always lands in its fence: mid-write when the fence
       wrote enough sectors, otherwise here at the fsync point *)
    if t.killing_this_fence && fplan.File_plan.kill_after_sectors <> 0 then
      fire_kill t "at_fsync";
    t.fsyncs_seen <- t.fsyncs_seen + 1;
    if
      fplan.File_plan.fsync_eio_from > 0
      && t.fsyncs_seen >= fplan.File_plan.fsync_eio_from
      && t.fsyncs_seen
         < fplan.File_plan.fsync_eio_from + fplan.File_plan.fsync_eio_count
    then begin
      t.f_eio_injected <- t.f_eio_injected + 1;
      femit t "fsync_eio";
      `Eio fplan.File_plan.drop_pages_on_eio
    end
    else `Ok
  in
  File_memory.set_hooks fmem
    (Some { File_memory.h_op; h_flush; h_fence; h_write; h_fsync });
  t

let remove_file t = File_memory.set_hooks t.fmem None

type file_counters = {
  f_flush_transients : int;
  f_fence_transients : int;
  f_short_writes : int;
  f_eio_injected : int;
  f_enospc_injected : int;
  f_kills_fired : int;
}

let file_counters (t : file_t) : file_counters =
  {
    f_flush_transients = t.f_flush_transients;
    f_fence_transients = t.f_fence_transients;
    f_short_writes = t.f_short_writes;
    f_eio_injected = t.f_eio_injected;
    f_enospc_injected = t.f_enospc_injected;
    f_kills_fired = t.f_kills_fired;
  }

let file_total c =
  c.f_flush_transients + c.f_fence_transients + c.f_short_writes
  + c.f_eio_injected + c.f_enospc_injected + c.f_kills_fired
