(** Deliberately broken: "linearize now, persist later, readers do nothing."

    This is the first bad branch of the paper's §3.1 case analysis, built
    on purpose: updates become visible at insertion (before their log append
    is fenced) and readers return immediately without helping persistence.
    A reader can therefore observe an update, respond — perhaps print the
    value — and a crash then erases the update the response depended on:
    a durable-linearizability violation.

    Exists to validate the oracle end-to-end: the test suite drives this
    implementation into the bad window and asserts that
    {!Onll_histcheck.Histcheck} rejects the recorded history, and that the
    same schedule against real ONLL is accepted. Never use this for
    anything else. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  module T = Onll_core.Trace.Make (M)
  module L = Onll_plog.Plog.Make (M)

  type envelope = { e_proc : int; e_seq : int; e_op : S.update_op }

  type record = Ops of { exec_idx : int; envs : envelope list }

  let envelope_codec =
    let open Onll_util.Codec in
    map
      (fun (e_proc, e_seq, e_op) -> { e_proc; e_seq; e_op })
      (fun { e_proc; e_seq; e_op } -> (e_proc, e_seq, e_op))
      (triple int int S.update_codec)

  let record_codec =
    let open Onll_util.Codec in
    map
      (fun (exec_idx, envs) -> Ops { exec_idx; envs })
      (fun (Ops { exec_idx; envs }) -> (exec_idx, envs))
      (pair int (list envelope_codec))

  type t = {
    mutable trace : (envelope, unit) T.t;
        (* [available] abused to mean "persistent", as in Persist_on_read *)
    logs : L.t array;
    seqs : int array;
    ostats : Onll_obs.Opstats.t;
  }

  module A = Onll_core.Attribution.Make (M)

  let instances = ref 0

  let create ?(log_capacity = 1 lsl 16) ?(sink = Onll_obs.Sink.null) () =
    let n = !instances in
    incr instances;
    {
      trace = T.create ~sink ~base_idx:0 ~base_state:() ();
      logs =
        Array.init M.max_processes (fun p ->
            L.create ~sink
              ~name:(Printf.sprintf "%s.%d.broken.%d" S.name n p)
              ~capacity:log_capacity ());
      seqs = Array.make M.max_processes 0;
      ostats = Onll_obs.Opstats.make sink;
    }

  let state_at node =
    let _, delta = T.delta_from node in
    List.fold_left
      (fun (st, _) (_, env) ->
        let st', v = S.apply st env.e_op in
        (st', Some v))
      (S.initial, None)
      delta

  let update t op =
    A.attributed t.ostats Onll_obs.Opstats.update_done (fun () ->
        let p = M.self () in
        let seq = t.seqs.(p) in
        t.seqs.(p) <- seq + 1;
        (* linearized right here — visible before it is durable *)
        let node = T.insert t.trace { e_proc = p; e_seq = seq; e_op = op } in
        let fuzzy = T.fuzzy_envs node in
        let payload =
          Onll_util.Codec.encode record_codec
            (Ops { exec_idx = node.T.idx; envs = fuzzy })
        in
        L.append t.logs.(p) payload;
        M.Tvar.set node.T.available true;
        let _, value = state_at node in
        M.return_point ();
        Option.get value)

  (* THE BUG: the reader observes the raw tail — linearized but possibly
     unpersisted operations — and neither waits nor helps. *)
  let read t rop =
    A.attributed t.ostats Onll_obs.Opstats.read_done (fun () ->
        let node = T.tail t.trace in
        let st, _ = state_at node in
        let v = S.read st rop in
        M.return_point ();
        v)

  let recover t =
    Array.iter (fun l -> ignore (L.recover l)) t.logs;
    let by_idx = Hashtbl.create 64 in
    Array.iter
      (fun log ->
        List.iter
          (fun payload ->
            let (Ops { exec_idx; envs }) =
              Onll_util.Codec.decode record_codec payload
            in
            List.iteri
              (fun k env -> Hashtbl.replace by_idx (exec_idx - k) env)
              envs)
          (L.entries log))
      t.logs;
    let max_idx = Hashtbl.fold (fun i _ acc -> max i acc) by_idx 0 in
    let trace =
      T.create ~sink:(Onll_obs.Opstats.sink t.ostats) ~base_idx:0
        ~base_state:() ()
    in
    Array.fill t.seqs 0 (Array.length t.seqs) 0;
    (let rec rebuild idx =
       if idx <= max_idx then
         match Hashtbl.find_opt by_idx idx with
         | None -> ()  (* stop at the first gap: the suffix is lost *)
         | Some env ->
             let node = T.insert trace env in
             M.Tvar.set node.T.available true;
             if env.e_seq >= t.seqs.(env.e_proc) then
               t.seqs.(env.e_proc) <- env.e_seq + 1;
             rebuild (idx + 1)
     in
     rebuild 1);
    t.trace <- trace
end
