(** Lock-based flat combining (§8's closing discussion, after Hendler et
    al. [19] and the log-centric design of Cohen et al. [12]).

    Each process announces its update in a per-process slot; whoever holds
    the lock (the combiner) collects all announced operations, appends the
    whole batch to its persistent log with a {e single} persistent fence,
    applies the batch to a transient mirror, publishes the results, and
    releases. Waiters spin.

    This "beats" the lower bound on fences per operation — one fence can
    cover a whole batch — but only by giving up lock-freedom: every waiter
    pays the combiner's fence in waiting time, and a stalled combiner stalls
    the world (the lower-bound experiment demonstrates this as a livelock,
    where ONLL's processes each make progress with their own fence). *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  module L = Onll_plog.Plog.Make (M)

  type slot =
    | Empty
    | Req of int * S.update_op  (** ticket, operation *)
    | Done of int * S.value  (** same ticket, result *)

  type record = Batch of { start_idx : int; ops : (int * S.update_op) list }

  let record_codec =
    let open Onll_util.Codec in
    map
      (fun (start_idx, ops) -> Batch { start_idx; ops })
      (fun (Batch { start_idx; ops }) -> (start_idx, ops))
      (pair int (list (pair int S.update_codec)))

  type t = {
    lock : bool M.Tvar.t;
    slots : slot M.Tvar.t array;
    mirror : S.state M.Tvar.t;  (** published only after the batch fence *)
    logs : L.t array;
    tickets : int array;  (** per process, owner-only *)
    mutable next_idx : int;  (** owned by the lock holder *)
    mutable batches : int;  (** statistics: batches appended *)
    mutable batched_ops : int;  (** statistics: operations covered *)
    ostats : Onll_obs.Opstats.t;
  }

  module A = Onll_core.Attribution.Make (M)

  let instances = ref 0

  let create ?(log_capacity = 1 lsl 16) ?(sink = Onll_obs.Sink.null) () =
    let n = !instances in
    incr instances;
    {
      lock = M.Tvar.make false;
      slots = Array.init M.max_processes (fun _ -> M.Tvar.make Empty);
      mirror = M.Tvar.make S.initial;
      logs =
        Array.init M.max_processes (fun p ->
            L.create ~sink
              ~name:(Printf.sprintf "%s.%d.fc.%d" S.name n p)
              ~capacity:log_capacity ());
      tickets = Array.make M.max_processes 0;
      next_idx = 0;
      batches = 0;
      batched_ops = 0;
      ostats = Onll_obs.Opstats.make sink;
    }

  let try_lock t = M.Tvar.cas t.lock ~expected:false ~desired:true
  let unlock t = M.Tvar.set t.lock false

  (* Serve every announced request in one fenced batch. Must hold the
     lock. *)
  let combine t ~proc =
    let requests = ref [] in
    Array.iteri
      (fun p slot ->
        match M.Tvar.get slot with
        | Req (ticket, op) -> requests := (p, ticket, op) :: !requests
        | Empty | Done _ -> ())
      t.slots;
    let requests = List.rev !requests in
    if requests <> [] then begin
      let ops = List.map (fun (p, _, op) -> (p, op)) requests in
      let payload =
        Onll_util.Codec.encode record_codec
          (Batch { start_idx = t.next_idx; ops })
      in
      (* One persistent fence covers the whole batch. *)
      L.append t.logs.(proc) payload;
      t.batches <- t.batches + 1;
      t.batched_ops <- t.batched_ops + List.length requests;
      (* The combiner persisted every other announcer's operation. *)
      if List.length requests > 1 && Onll_obs.Opstats.active t.ostats then
        Onll_obs.Sink.emit
          (Onll_obs.Opstats.sink t.ostats)
          ~proc
          (Onll_obs.Event.Help { helped = List.length requests - 1 });
      t.next_idx <- t.next_idx + List.length requests;
      (* Apply and publish: first the new state, then the results (a waiter
         returning implies the state it observed is durable). *)
      let state, results =
        List.fold_left
          (fun (st, acc) (p, ticket, op) ->
            let st', v = S.apply st op in
            (st', (p, ticket, v) :: acc))
          (M.Tvar.get t.mirror, [])
          requests
      in
      M.Tvar.set t.mirror state;
      List.iter
        (fun (p, ticket, v) -> M.Tvar.set t.slots.(p) (Done (ticket, v)))
        (List.rev results)
    end

  let update t op =
    A.attributed t.ostats Onll_obs.Opstats.update_done (fun () ->
        let p = M.self () in
        let ticket = t.tickets.(p) in
        t.tickets.(p) <- ticket + 1;
        M.Tvar.set t.slots.(p) (Req (ticket, op));
        let rec wait () =
          match M.Tvar.get t.slots.(p) with
          | Done (tk, v) when tk = ticket ->
              M.Tvar.set t.slots.(p) Empty;
              v
          | Done _ | Empty | Req _ ->
              if try_lock t then begin
                combine t ~proc:p;
                unlock t;
                wait ()
              end
              else begin
                M.pause ();
                wait ()
              end
        in
        let v = wait () in
        M.return_point ();
        v)

  let read t rop =
    A.attributed t.ostats Onll_obs.Opstats.read_done (fun () ->
        let v = S.read (M.Tvar.get t.mirror) rop in
        M.return_point ();
        v)

  let recover t =
    Array.iter (fun l -> ignore (L.recover l)) t.logs;
    let batches = ref [] in
    Array.iter
      (fun log ->
        List.iter
          (fun payload ->
            let (Batch { start_idx; ops }) =
              Onll_util.Codec.decode record_codec payload
            in
            batches := (start_idx, ops) :: !batches)
          (L.entries log))
      t.logs;
    let batches = List.sort compare !batches in
    let state, next_idx =
      List.fold_left
        (fun (st, expect) (start_idx, ops) ->
          if start_idx <> expect then
            raise
              (Onll_core.Onll.Recovery_corrupt
                 (Printf.sprintf "flat combining: batch gap at index %d"
                    start_idx));
          ( List.fold_left (fun st (_, op) -> fst (S.apply st op)) st ops,
            expect + List.length ops ))
        (S.initial, 0)
        batches
    in
    t.next_idx <- next_idx;
    M.Tvar.set t.mirror state;
    M.Tvar.set t.lock false;
    Array.iter (fun s -> M.Tvar.set s Empty) t.slots;
    Array.fill t.tickets 0 (Array.length t.tickets) 0

  let current_state t = M.Tvar.get t.mirror
  let batch_stats t = (t.batches, t.batched_ops)
end
