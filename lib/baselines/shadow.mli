(** Shadow-paging baseline: lock-protected, whole-state reserialisation.

    The classic "persist in place, atomically" design of transactional NVM
    systems (paper §7): each update re-encodes the entire state into an
    alternating NVM slot (fence 1) and commits it with a checksummed,
    versioned header write (fence 2). Two persistent fences per update,
    none per read; durable and crash-atomic — but blocking: a stalled lock
    holder stops the world, which the lower-bound adversary exposes as a
    livelock. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  type t

  val create : ?state_capacity:int -> ?sink:Onll_obs.Sink.t -> unit -> t
  (** [state_capacity] (default 4096) bounds the encoded state size.
      [sink] hosts the per-operation attribution metrics (updates land 2
      in ["fences.update"]). @raise Invalid_argument from [update] if the
      state outgrows it. *)

  val update : t -> S.update_op -> S.value
  val read : t -> S.read_op -> S.value

  val recover : t -> unit
  (** Load the newest slot with a valid header; a torn commit falls back to
      the previous slot. *)
end
