(** "Linearize now, persist later": the §3.1 trade-off, taken the other way.

    Structurally ONLL with the order of stages flipped — updates are
    visible (linearized) at trace insertion, before they are durable — and
    the §3.1 case analysis then forces readers that observe a
    not-yet-persistent operation to make it durable before responding.
    Still lock-free and durably linearizable; still one persistent fence
    per update; but reads are no longer fence-free. The benchmarks measure
    how often readers pay ({!Make.read_fences}). *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  type t

  val create : ?log_capacity:int -> ?sink:Onll_obs.Sink.t -> unit -> t
  (** [sink] receives trace and log events and hosts the per-operation
      attribution metrics — helping fences land in ["fences.read"]. *)

  val update : t -> S.update_op -> S.value
  (** @raise Onll_plog.Plog.Full when the caller's log fills — baselines
      deliberately do not compact (cost comparisons only; size logs for the
      workload). *)

  val read : t -> S.read_op -> S.value
  (** May issue a persistent fence (helping an in-flight update persist). *)

  val read_fences : t -> int
  (** Number of reads so far that had to fence. *)

  val recover : t -> unit
  val current_state : t -> S.state
end
