(** "Linearize now, persist later" — the design §3.1 argues against.

    Structurally ONLL's sibling: same execution trace, same per-process
    single-fence logs, same recovery. The difference is the order of stages:
    an update is {e linearized at insertion} (it becomes visible to readers
    immediately), and the trace's per-node flag tracks {e persistence}
    instead of availability. The §3.1 case analysis then forces a choice on
    readers that observe a not-yet-persistent operation; this implementation
    takes the third branch — {e the reader helps the update persist} —
    which preserves durable linearizability and lock-freedom but gives up
    the "no persistent fences on reads" property. Benchmarks measure exactly
    how often readers pay.

    Fence cost: 1 per update, plus 1 per read whose observed prefix is not
    yet persistent. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  module T = Onll_core.Trace.Make (M)
  module L = Onll_plog.Plog.Make (M)

  type envelope = { e_proc : int; e_seq : int; e_op : S.update_op }

  type record = Ops of { exec_idx : int; envs : envelope list }

  let envelope_codec =
    let open Onll_util.Codec in
    map
      (fun (e_proc, e_seq, e_op) -> { e_proc; e_seq; e_op })
      (fun { e_proc; e_seq; e_op } -> (e_proc, e_seq, e_op))
      (triple int int S.update_codec)

  let record_codec =
    let open Onll_util.Codec in
    map
      (fun (exec_idx, envs) -> Ops { exec_idx; envs })
      (fun (Ops { exec_idx; envs }) -> (exec_idx, envs))
      (pair int (list envelope_codec))

  type t = {
    (* In this trace, a node's [available] flag means "persistent". Nodes
       are visible (linearized) as soon as they are inserted. *)
    mutable trace : (envelope, unit) T.t;
    logs : L.t array;
    seqs : int array;
    mutable read_fences : int;  (** reads that had to fence (statistics) *)
    ostats : Onll_obs.Opstats.t;
  }

  module A = Onll_core.Attribution.Make (M)

  let instances = ref 0

  let create ?(log_capacity = 1 lsl 16) ?(sink = Onll_obs.Sink.null) () =
    let n = !instances in
    incr instances;
    {
      trace = T.create ~sink ~base_idx:0 ~base_state:() ();
      logs =
        Array.init M.max_processes (fun p ->
            L.create ~sink
              ~name:(Printf.sprintf "%s.%d.por.%d" S.name n p)
              ~capacity:log_capacity ());
      seqs = Array.make M.max_processes 0;
      read_fences = 0;
      ostats = Onll_obs.Opstats.make sink;
    }

  let state_at node =
    let _, delta = T.delta_from node in
    List.fold_left
      (fun (st, _) (_, env) ->
        let st', v = S.apply st env.e_op in
        (st', Some v))
      (S.initial, None)
      delta

  (* Persist [node]'s unpersisted window into [proc]'s log and mark the
     node persistent. One persistent fence. *)
  let persist_window t ~proc node =
    let fuzzy = T.fuzzy_envs node in
    let payload =
      Onll_util.Codec.encode record_codec
        (Ops { exec_idx = node.T.idx; envs = fuzzy })
    in
    L.append t.logs.(proc) payload;
    M.Tvar.set node.T.available true

  let update t op =
    A.attributed t.ostats Onll_obs.Opstats.update_done (fun () ->
        let p = M.self () in
        let seq = t.seqs.(p) in
        t.seqs.(p) <- seq + 1;
        (* Linearize now: visible to every reader from this insertion on. *)
        let node = T.insert t.trace { e_proc = p; e_seq = seq; e_op = op } in
        persist_window t ~proc:p node;
        let _, value = state_at node in
        M.return_point ();
        Option.get value)

  let read t rop =
    (* Readers observe the very tail — every inserted update is linearized.
       If that prefix is not yet durable, the reader must make it durable
       before responding (§3.1, branch three). The helping fence lands in
       [fences.read] — the attribution the benchmarks exist to expose. *)
    A.attributed t.ostats Onll_obs.Opstats.read_done (fun () ->
        let node = T.tail t.trace in
        if not (M.Tvar.get node.T.available) then begin
          t.read_fences <- t.read_fences + 1;
          persist_window t ~proc:(M.self ()) node
        end;
        let st, _ = state_at node in
        let v = S.read st rop in
        M.return_point ();
        v)

  let read_fences t = t.read_fences

  let recover t =
    Array.iter (fun l -> ignore (L.recover l)) t.logs;
    let by_idx = Hashtbl.create 64 in
    Array.iter
      (fun log ->
        List.iter
          (fun payload ->
            let (Ops { exec_idx; envs }) =
              Onll_util.Codec.decode record_codec payload
            in
            List.iteri
              (fun k env -> Hashtbl.replace by_idx (exec_idx - k) env)
              envs)
          (L.entries log))
      t.logs;
    let max_idx = Hashtbl.fold (fun i _ acc -> max i acc) by_idx 0 in
    let trace =
      T.create ~sink:(Onll_obs.Opstats.sink t.ostats) ~base_idx:0
        ~base_state:() ()
    in
    Array.fill t.seqs 0 (Array.length t.seqs) 0;
    for idx = 1 to max_idx do
      match Hashtbl.find_opt by_idx idx with
      | None ->
          raise
            (Onll_core.Onll.Recovery_corrupt
               (Printf.sprintf "operation at index %d missing from all logs"
                  idx))
      | Some env ->
          let node = T.insert trace env in
          M.Tvar.set node.T.available true;
          if env.e_seq >= t.seqs.(env.e_proc) then
            t.seqs.(env.e_proc) <- env.e_seq + 1
    done;
    t.trace <- trace

  let current_state t = fst (state_at (T.tail t.trace))
end
