(** Non-durable lock-free baseline: the object state lives in a single
    transient variable updated by CAS. Zero fences, zero durability — the
    throughput ceiling every durable implementation is measured against,
    and the floor for fence counts. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  type t = { state : S.state M.Tvar.t; ostats : Onll_obs.Opstats.t }

  module A = Onll_core.Attribution.Make (M)

  let create ?(sink = Onll_obs.Sink.null) () =
    { state = M.Tvar.make S.initial; ostats = Onll_obs.Opstats.make sink }

  let update t op =
    A.attributed t.ostats Onll_obs.Opstats.update_done (fun () ->
        let rec loop () =
          let s = M.Tvar.get t.state in
          let s', v = S.apply s op in
          if M.Tvar.cas t.state ~expected:s ~desired:s' then v
          else begin
            if Onll_obs.Opstats.active t.ostats then
              Onll_obs.Sink.emit
                (Onll_obs.Opstats.sink t.ostats)
                ~proc:(M.self ())
                (Onll_obs.Event.Cas_retry { site = "volatile.update" });
            loop ()
          end
        in
        let v = loop () in
        M.return_point ();
        v)

  let read t rop =
    A.attributed t.ostats Onll_obs.Opstats.read_done (fun () ->
        let v = S.read (M.Tvar.get t.state) rop in
        M.return_point ();
        v)

  (* Nothing survives a crash: recovery is reinitialisation. *)
  let recover t = M.Tvar.set t.state S.initial
end
