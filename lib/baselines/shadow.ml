(** Shadow-paging baseline: a lock-protected object whose entire state is
    re-serialised to an alternating NVM slot on every update — the classic
    "persist in place, atomically" design used by transactional NVM systems
    (§7). Costs {e two} persistent fences per update (data, then the
    versioned header that commits it) and none per read. Blocking: a stalled
    lock holder stops the world.

    Region layout:
    {v
    0    header slot A: seq:int64  which:int64  len:int64  crc:int64
    32   header slot B
    64   state slot 0  (state_capacity bytes)
    64+c state slot 1
    v} *)

open Onll_util

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  type t = {
    lock : bool M.Tvar.t;
    mirror : S.state M.Tvar.t;  (** published only after durability *)
    region : M.Pm.t;
    state_capacity : int;
    mutable seq : int64;  (** owned by the lock holder *)
    ostats : Onll_obs.Opstats.t;
  }

  module A = Onll_core.Attribution.Make (M)

  let instances = ref 0

  let header_crc seq which len =
    let b = Bytes.create 24 in
    Bytes.set_int64_le b 0 seq;
    Bytes.set_int64_le b 8 which;
    Bytes.set_int64_le b 16 len;
    Int64.logand (Int64.of_int32 (Crc32.bytes b ~pos:0 ~len:24)) 0xFFFFFFFFL

  let slot_off t which = 64 + (which * t.state_capacity)

  let create ?(state_capacity = 4096) ?(sink = Onll_obs.Sink.null) () =
    let n = !instances in
    incr instances;
    {
      lock = M.Tvar.make false;
      mirror = M.Tvar.make S.initial;
      region =
        M.Pm.create
          ~name:(Printf.sprintf "%s.%d.shadow" S.name n)
          ~size:(64 + (2 * state_capacity));
      state_capacity;
      seq = 0L;
      ostats = Onll_obs.Opstats.make sink;
    }

  let acquire t =
    let rec loop () =
      if not (M.Tvar.cas t.lock ~expected:false ~desired:true) then begin
        M.pause ();
        loop ()
      end
    in
    loop ()

  let release t = M.Tvar.set t.lock false

  let persist t state =
    let blob = Codec.encode S.state_codec state in
    let len = String.length blob in
    if len > t.state_capacity then
      invalid_arg "Shadow: state exceeds state_capacity";
    let seq = Int64.add t.seq 1L in
    let which = Int64.to_int (Int64.rem seq 2L) in
    (* 1. write the new state into the shadow slot and fence it ... *)
    let off = slot_off t which in
    M.Pm.store t.region ~off blob;
    M.Pm.flush t.region ~off ~len;
    M.fence ();
    (* 2. ... then commit it with a checksummed header update. *)
    let hdr = if Int64.rem seq 2L = 0L then 0 else 32 in
    M.Pm.store_int64 t.region ~off:hdr seq;
    M.Pm.store_int64 t.region ~off:(hdr + 8) (Int64.of_int which);
    M.Pm.store_int64 t.region ~off:(hdr + 16) (Int64.of_int len);
    M.Pm.store_int64 t.region ~off:(hdr + 24)
      (header_crc seq (Int64.of_int which) (Int64.of_int len));
    M.Pm.flush t.region ~off:hdr ~len:32;
    M.fence ();
    t.seq <- seq

  let update t op =
    A.attributed t.ostats Onll_obs.Opstats.update_done (fun () ->
        acquire t;
        let s = M.Tvar.get t.mirror in
        let s', v = S.apply s op in
        persist t s';
        M.Tvar.set t.mirror s';
        release t;
        M.return_point ();
        v)

  let read t rop =
    A.attributed t.ostats Onll_obs.Opstats.read_done (fun () ->
        let v = S.read (M.Tvar.get t.mirror) rop in
        M.return_point ();
        v)

  let read_slot t hdr =
    let seq = M.Pm.load_int64 t.region ~off:hdr in
    let which = M.Pm.load_int64 t.region ~off:(hdr + 8) in
    let len = M.Pm.load_int64 t.region ~off:(hdr + 16) in
    let crc = M.Pm.load_int64 t.region ~off:(hdr + 24) in
    if
      seq > 0L
      && (which = 0L || which = 1L)
      && len > 0L
      && Int64.to_int len <= t.state_capacity
      && crc = header_crc seq which len
    then Some (seq, Int64.to_int which, Int64.to_int len)
    else None

  let recover t =
    let best =
      match (read_slot t 0, read_slot t 32) with
      | None, None -> None
      | Some s, None | None, Some s -> Some s
      | Some ((sa, _, _) as a), Some ((sb, _, _) as b) ->
          Some (if sa >= sb then a else b)
    in
    match best with
    | None ->
        t.seq <- 0L;
        M.Tvar.set t.mirror S.initial;
        M.Tvar.set t.lock false
    | Some (seq, which, len) ->
        let blob = M.Pm.load t.region ~off:(slot_off t which) ~len in
        let state = Codec.decode S.state_codec blob in
        t.seq <- seq;
        M.Tvar.set t.mirror state;
        M.Tvar.set t.lock false
end
