(** Name-indexed construction of every benchmarked implementation.

    One place that knows how to build ["onll"], ["onll+views"],
    ["onll-wait-free"] (alias ["wait-free"]), ["onll-mirrored"] (alias
    ["mirrored"]; two-way replicated logs, still one fence per update),
    ["onll-sharded"] (alias ["sharded"]; the E14 partitioned construction —
    each op routed to one of [shards] independent ONLL instances, still one
    fence per update), ["onll-session"] (alias ["session"]; the plain
    construction driven through per-client {!Onll_session} exactly-once
    sessions — one extra fence per update for the durable client record,
    attributed to ["fences.session"], none added to the object's path),
    ["onll-batched"] (alias ["batched"]; the E16 group-commit construction —
    concurrent updates share one batch fence, amortised below 1 pf/update,
    degenerating to exactly 1 solo), ["onll-txn"] (alias ["txn"]; the E19
    cross-shard transaction coordinator over 4 shards — multi-shard
    transactions commit under one coordinator fence, single updates take
    the sharded fast path), ["onll-relaxed"] (alias ["relaxed"]; the E20
    bounded-staleness mode — fence-free acks under a risk budget, one
    lazy fence per full tail, strictly below 1 pf/update),
    ["persist-on-read"], ["shadow"],
    ["flat-combining"] and ["volatile"] over a fresh simulated machine —
    used by the CLI ([onll lowerbound -i], [onll stats -i]), the
    lower-bound benchmark and the fence audit instead of per-caller copies
    of the same match.

    Compositions are not new names: they are {!options}. ["onll"] with
    [{ default_options with replicas = 2; batched = true }] is the
    mirrored group-commit object; every flag the CLI spells
    [--mirrored --sharded --session --batched] maps onto one field of the
    record, uniformly for every caller. A family name is shorthand for
    the base options it implies (["onll-mirrored"] = [replicas = 2], …)
    and composes with whatever else the record requests. *)

type handle = {
  sim : Onll_machine.Sim.t;
  sink : Onll_obs.Sink.t;  (** the sink the build installed *)
  update : unit -> unit;
      (** one update by the calling (scheduled) process *)
  read : unit -> unit;  (** one read-only operation *)
  scrub : (unit -> unit) option;
      (** one cooperative online-scrub step ({!Onll_core.Onll.CONSTRUCTION.scrub});
          [None] for implementations without one *)
  recover : (unit -> Onll_core.Onll.Recovery_report.t) option;
      (** hardened post-crash recovery
          ({!Onll_core.Onll.CONSTRUCTION.recover_report}); [None] for
          implementations without one — [onll stats --crash] uses this *)
}

type options = {
  log_capacity : int;  (** bytes per persistent log (default 64 KiB) *)
  state_capacity : int;
      (** bytes per shadow-state region (["shadow"] only; default 4096) *)
  shards : int;
      (** > 1 routes every operation through {!Onll_sharded} with this
          many independent instances (default 1; the ["onll-sharded"]
          family name implies 4 unless the record already asks for more) *)
  replicas : int;
      (** log copies, all drained under the update's one fence
          (default 1; ["onll-mirrored"] implies 2) *)
  batched : bool;
      (** group-commit construction ({!Onll_batched}) instead of the
          per-process-log one (default false; ["onll-batched"] implies
          it) *)
  session : bool;
      (** drive updates through per-client exactly-once
          {!Onll_session} sessions (default false; ["onll-session"]
          implies it); composes with [batched]/[replicas], not with
          [shards] *)
  local_views : bool;
      (** §8 read acceleration (default false; ["onll+views"] implies
          it) *)
  wait_free : bool;
      (** wait-free trace variant (default false; ["onll-wait-free"]
          implies it); mutually exclusive with [batched] *)
  txn : bool;
      (** front the sharded object with the E19 cross-shard transaction
          coordinator ({!Onll_txn}; default false; ["onll-txn"] implies
          it, plus [shards = 4] unless the record asks for more);
          composes with [replicas]/[shards], not with
          [batched]/[session]/[wait_free]. Single updates take the fast
          path — a plain sharded update, one fence — so the E1 audit
          holds unchanged *)
  relaxed : bool;
      (** wrap the object in the E20 bounded-staleness mode
          ({!Onll_relaxed}): updates acknowledged fence-free into a
          volatile tail of at most [risk_budget] operations, one lazy
          fence draining it — strictly below 1 pf/update in steady state,
          with a crash losing at most the budgeted (and precisely
          reported) suffix. Default false; ["onll-relaxed"] implies it;
          composes with [replicas]/[wait_free], not with
          [batched]/[session]/[txn]/[shards] *)
  risk_budget : int;
      (** [relaxed] only: max acknowledged-unfenced operations (default
          8) *)
}
(** How to build an ONLL-family object: every axis the registry knows,
    with {!default_options} as the neutral point. Only the ONLL family
    reads these (baselines take [log_capacity]/[state_capacity] and
    ignore the rest). *)

val default_options : options

val pp_options : Format.formatter -> options -> unit
(** One line, only the non-default fields (["defaults"] when none) —
    benches embed it in row labels. *)

val names : string list
(** Canonical implementation names, in report order (aliases excluded). *)

val recovery_capable : string list
(** The subset of {!names} with hardened recovery (the ONLL family) — the
    implementations [onll stats --crash] and the crash harnesses accept. *)

module Make (S : Onll_core.Spec.S) : sig
  val build :
    ?sink:Onll_obs.Sink.t ->
    ?options:options ->
    max_processes:int ->
    gen_update:(unit -> S.update_op) ->
    gen_read:(unit -> S.read_op) ->
    string ->
    handle option
  (** Build the named implementation on a fresh {!Onll_machine.Sim.t},
      installing [sink] (default {!Onll_obs.Sink.null}) in both the machine
      and the object. [gen_update]/[gen_read] supply the operation each
      thunk invocation performs (close over an RNG for random workloads).
      [options] (default {!default_options}) selects capacities and the
      composition; the family name's own implication (see {!options}) is
      applied on top of it. [None] for an unknown name — see {!names}. *)
end
