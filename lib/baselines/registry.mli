(** Name-indexed construction of every benchmarked implementation.

    One place that knows how to build ["onll"], ["onll+views"],
    ["onll-wait-free"] (alias ["wait-free"]), ["onll-mirrored"] (alias
    ["mirrored"]; two-way replicated logs, still one fence per update),
    ["onll-sharded"] (alias ["sharded"]; the E14 partitioned construction —
    each op routed to one of [shards] independent ONLL instances, still one
    fence per update), ["onll-session"] (alias ["session"]; the plain
    construction driven through per-client {!Onll_session} exactly-once
    sessions — one extra fence per update for the durable client record,
    attributed to ["fences.session"], none added to the object's path),
    ["persist-on-read"], ["shadow"], ["flat-combining"]
    and ["volatile"]
    over a fresh simulated machine — used by the CLI ([onll lowerbound -i],
    [onll stats -i]), the lower-bound benchmark and the fence audit instead
    of per-caller copies of the same match. *)

type handle = {
  sim : Onll_machine.Sim.t;
  sink : Onll_obs.Sink.t;  (** the sink the build installed *)
  update : unit -> unit;
      (** one update by the calling (scheduled) process *)
  read : unit -> unit;  (** one read-only operation *)
  scrub : (unit -> unit) option;
      (** one cooperative online-scrub step ({!Onll_core.Onll.CONSTRUCTION.scrub});
          [None] for implementations without one *)
  recover : (unit -> Onll_core.Onll.Recovery_report.t) option;
      (** hardened post-crash recovery
          ({!Onll_core.Onll.CONSTRUCTION.recover_report}); [None] for
          implementations without one — [onll stats --crash] uses this *)
}

val names : string list
(** Canonical implementation names, in report order (aliases excluded). *)

module Make (S : Onll_core.Spec.S) : sig
  val build :
    ?sink:Onll_obs.Sink.t ->
    ?log_capacity:int ->
    ?state_capacity:int ->
    ?shards:int ->
    max_processes:int ->
    gen_update:(unit -> S.update_op) ->
    gen_read:(unit -> S.read_op) ->
    string ->
    handle option
  (** Build the named implementation on a fresh {!Onll_machine.Sim.t},
      installing [sink] (default {!Onll_obs.Sink.null}) in both the machine
      and the object. [gen_update]/[gen_read] supply the operation each
      thunk invocation performs (close over an RNG for random workloads).
      [shards] (default 4) only affects ["onll-sharded"]. [None] for an
      unknown name — see {!names}. *)
end
