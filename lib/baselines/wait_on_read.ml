(** "Linearize now, persist later, readers wait" — §3.1's second branch.

    Like {!Persist_on_read}, updates are linearized at insertion, before
    they are durable. But here a reader that observes a not-yet-persistent
    operation {e waits} for the updater to finish persisting instead of
    helping. Durability is preserved (the reader never responds before its
    observation is durable) — but lock-freedom is lost: a reader spins
    behind a stalled updater forever, which the scripted tests demonstrate
    as a livelock. Together with {!Broken_early} (branch one: violates
    durability) and {!Persist_on_read} (branch three: readers pay fences),
    this completes the paper's case analysis in runnable form; ONLL's design
    is exactly the escape from all three. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  module T = Onll_core.Trace.Make (M)
  module L = Onll_plog.Plog.Make (M)

  type envelope = { e_proc : int; e_seq : int; e_op : S.update_op }

  type record = Ops of { exec_idx : int; envs : envelope list }

  let envelope_codec =
    let open Onll_util.Codec in
    map
      (fun (e_proc, e_seq, e_op) -> { e_proc; e_seq; e_op })
      (fun { e_proc; e_seq; e_op } -> (e_proc, e_seq, e_op))
      (triple int int S.update_codec)

  let record_codec =
    let open Onll_util.Codec in
    map
      (fun (exec_idx, envs) -> Ops { exec_idx; envs })
      (fun (Ops { exec_idx; envs }) -> (exec_idx, envs))
      (pair int (list envelope_codec))

  type t = {
    mutable trace : (envelope, unit) T.t;
        (* [available] means "persistent", set by the owner after its
           fence *)
    logs : L.t array;
    seqs : int array;
    mutable reader_waits : int;  (** reads that had to spin (statistics) *)
    ostats : Onll_obs.Opstats.t;
  }

  module A = Onll_core.Attribution.Make (M)

  let instances = ref 0

  let create ?(log_capacity = 1 lsl 16) ?(sink = Onll_obs.Sink.null) () =
    let n = !instances in
    incr instances;
    {
      trace = T.create ~sink ~base_idx:0 ~base_state:() ();
      logs =
        Array.init M.max_processes (fun p ->
            L.create ~sink
              ~name:(Printf.sprintf "%s.%d.wor.%d" S.name n p)
              ~capacity:log_capacity ());
      seqs = Array.make M.max_processes 0;
      reader_waits = 0;
      ostats = Onll_obs.Opstats.make sink;
    }

  let state_at node =
    let _, delta = T.delta_from node in
    List.fold_left
      (fun (st, _) (_, env) ->
        let st', v = S.apply st env.e_op in
        (st', Some v))
      (S.initial, None)
      delta

  let update t op =
    A.attributed t.ostats Onll_obs.Opstats.update_done (fun () ->
        let p = M.self () in
        let seq = t.seqs.(p) in
        t.seqs.(p) <- seq + 1;
        (* linearize now *)
        let node = T.insert t.trace { e_proc = p; e_seq = seq; e_op = op } in
        let fuzzy = T.fuzzy_envs node in
        let payload =
          Onll_util.Codec.encode record_codec
            (Ops { exec_idx = node.T.idx; envs = fuzzy })
        in
        (* Full propagates: baselines deliberately do not compact (cost
           comparisons only; size logs for the workload). *)
        L.append t.logs.(p) payload;
        M.Tvar.set node.T.available true;
        let _, value = state_at node in
        M.return_point ();
        Option.get value)

  (* THE COST: the reader observes the raw tail and, if its observation is
     not yet durable, spins until the responsible updater persists it. *)
  let read t rop =
    A.attributed t.ostats Onll_obs.Opstats.read_done (fun () ->
        let node = T.tail t.trace in
        if not (M.Tvar.get node.T.available) then begin
          t.reader_waits <- t.reader_waits + 1;
          while not (M.Tvar.get node.T.available) do
            M.pause ()
          done
        end;
        let st, _ = state_at node in
        let v = S.read st rop in
        M.return_point ();
        v)

  let reader_waits t = t.reader_waits

  let recover t =
    Array.iter (fun l -> ignore (L.recover l)) t.logs;
    let by_idx = Hashtbl.create 64 in
    Array.iter
      (fun log ->
        List.iter
          (fun payload ->
            let (Ops { exec_idx; envs }) =
              Onll_util.Codec.decode record_codec payload
            in
            List.iteri
              (fun k env -> Hashtbl.replace by_idx (exec_idx - k) env)
              envs)
          (L.entries log))
      t.logs;
    let max_idx = Hashtbl.fold (fun i _ acc -> max i acc) by_idx 0 in
    let trace =
      T.create ~sink:(Onll_obs.Opstats.sink t.ostats) ~base_idx:0
        ~base_state:() ()
    in
    Array.fill t.seqs 0 (Array.length t.seqs) 0;
    for idx = 1 to max_idx do
      match Hashtbl.find_opt by_idx idx with
      | None ->
          raise
            (Onll_core.Onll.Recovery_corrupt
               (Printf.sprintf "operation at index %d missing from all logs"
                  idx))
      | Some env ->
          let node = T.insert trace env in
          M.Tvar.set node.T.available true;
          if env.e_seq >= t.seqs.(env.e_proc) then
            t.seqs.(env.e_proc) <- env.e_seq + 1
    done;
    t.trace <- trace

  let current_state t = fst (state_at (T.tail t.trace))
end
