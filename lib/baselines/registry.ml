(** Name-indexed construction of every benchmarked implementation.

    The CLI, the lower-bound adversary and the fence audit all need "build
    implementation [name] on a fresh simulated machine and hand me opaque
    update/read thunks" — previously each had its own copy of the
    many-armed match. This registry is that match, once: {!Make.build}
    instantiates the requested implementation over a fresh {!Sim.t} (the
    given sink installed both in the machine and in the object, so machine
    and object events interleave on one logical clock) and hides the
    functor plumbing behind closures. Composition — mirrored logs, shard
    routing, session fronting, group commit — is one {!options} record
    instead of an optional argument per axis. *)

type handle = {
  sim : Onll_machine.Sim.t;
  sink : Onll_obs.Sink.t;
  update : unit -> unit;
      (** one update by the calling (scheduled) process *)
  read : unit -> unit;  (** one read-only operation *)
  scrub : (unit -> unit) option;
      (** one cooperative online-scrub step; [None] for implementations
          without one (everything but the ONLL family) *)
  recover : (unit -> Onll_core.Onll.Recovery_report.t) option;
      (** hardened post-crash recovery; [None] for implementations
          without one (everything but the ONLL family) *)
}

type options = {
  log_capacity : int;
  state_capacity : int;
  shards : int;
  replicas : int;
  batched : bool;
  session : bool;
  local_views : bool;
  wait_free : bool;
  txn : bool;
  relaxed : bool;
  risk_budget : int;
}

let default_options =
  {
    log_capacity = 1 lsl 16;
    state_capacity = 4096;
    shards = 1;
    replicas = 1;
    batched = false;
    session = false;
    local_views = false;
    wait_free = false;
    txn = false;
    relaxed = false;
    risk_budget = 8;
  }

let pp_options ppf o =
  let d = default_options in
  let parts = ref [] in
  let p fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  if o.relaxed then p "relaxed(k=%d)" o.risk_budget;
  if o.txn then p "txn";
  if o.wait_free then p "wait-free";
  if o.local_views then p "views";
  if o.session then p "session";
  if o.batched then p "batched";
  if o.replicas <> d.replicas then p "replicas=%d" o.replicas;
  if o.shards <> d.shards then p "shards=%d" o.shards;
  if o.state_capacity <> d.state_capacity then
    p "state=%dB" o.state_capacity;
  if o.log_capacity <> d.log_capacity then p "log=%dB" o.log_capacity;
  match !parts with
  | [] -> Format.pp_print_string ppf "defaults"
  | parts -> Format.pp_print_string ppf (String.concat " " parts)

let names =
  [
    "onll";
    "onll+views";
    "onll-wait-free";
    "onll-mirrored";
    "onll-sharded";
    "onll-session";
    "onll-batched";
    "onll-txn";
    "onll-relaxed";
    "persist-on-read";
    "shadow";
    "flat-combining";
    "volatile";
  ]

(* What a family name implies, applied on top of the caller's record —
   ["onll-mirrored"] with [{ o with batched = true }] is the mirrored
   group-commit object, uniformly for every caller. *)
let family name o =
  match name with
  | "onll" -> Some o
  | "onll+views" | "views" -> Some { o with local_views = true }
  | "onll-wait-free" | "wait-free" -> Some { o with wait_free = true }
  | "onll-mirrored" | "mirrored" -> Some { o with replicas = max 2 o.replicas }
  | "onll-sharded" | "sharded" ->
      Some { o with shards = (if o.shards > 1 then o.shards else 4) }
  (* session and relaxed name unsharded families: a caller-supplied shard
     count (e.g. the CLI's --shards default, documented as ignored by
     non-sharded implementations) must not trip the composition guard *)
  | "onll-session" | "session" -> Some { o with session = true; shards = 1 }
  | "onll-batched" | "batched" -> Some { o with batched = true }
  | "onll-txn" | "txn" ->
      Some
        {
          o with
          txn = true;
          shards = (if o.shards > 1 then o.shards else 4);
        }
  | "onll-relaxed" | "relaxed" -> Some { o with relaxed = true; shards = 1 }
  | _ -> None

let recovery_capable =
  List.filter (fun n -> family n default_options <> None) names

module Make (S : Onll_core.Spec.S) = struct
  module type C =
    Onll_core.Onll.CONSTRUCTION
      with type state = S.state
       and type update_op = S.update_op
       and type read_op = S.read_op
       and type value = S.value

  let build ?(sink = Onll_obs.Sink.null) ?(options = default_options)
      ~max_processes ~gen_update ~gen_read name =
    let fresh_sim () = Onll_machine.Sim.create ~sink ~max_processes () in
    let onll o =
      if o.batched && o.wait_free then
        invalid_arg "Registry.build: batched and wait_free are exclusive";
      if o.session && o.shards > 1 then
        invalid_arg "Registry.build: session composes over an unsharded object";
      if o.txn && (o.batched || o.session || o.wait_free) then
        invalid_arg
          "Registry.build: txn composes over the plain sharded construction";
      if o.relaxed && (o.batched || o.session || o.txn || o.shards > 1) then
        invalid_arg
          "Registry.build: relaxed composes over the plain (optionally \
           mirrored or wait-free) construction";
      let sim = fresh_sim () in
      let module M = (val Onll_machine.Sim.machine sim) in
      let cfg =
        {
          Onll_core.Onll.Config.log_capacity = o.log_capacity;
          replicas = o.replicas;
          local_views = o.local_views;
          region_suffix = "";
          sink;
        }
      in
      let base : (module C) =
        if o.batched then (module Onll_batched.Make (M) (S))
        else if o.wait_free then (module Onll_core.Onll.Make_wait_free (M) (S))
        else (module Onll_core.Onll.Make (M) (S))
      in
      let module C = (val base) in
      if o.relaxed then begin
        (* The E20 bounded-staleness wrapper: updates ack fence-free into
           a risk-budgeted tail, one lazy fence drains it — the E1 audit
           row asserts strictly sub-1 fences per update, reads still
           free. *)
        let module TC =
          (val (if o.wait_free then
                  (module Onll_core.Onll.Make_wait_free (M) (S)
                  : Onll_core.Onll.TXN_CAPABLE
                    with type state = S.state
                     and type update_op = S.update_op
                     and type read_op = S.read_op
                     and type value = S.value)
                else (module Onll_core.Onll.Make (M) (S))))
        in
        let module R = Onll_relaxed.Make_over (M) (S) (TC) in
        let obj =
          R.attach ~max_unfenced_ops:o.risk_budget cfg (TC.make cfg)
        in
        {
          sim;
          sink;
          update = (fun () -> ignore (R.update obj (gen_update ())));
          read = (fun () -> ignore (R.read obj (gen_read ())));
          scrub = Some (fun () -> ignore (R.scrub obj));
          recover = Some (fun () -> R.recover_report obj);
        }
      end
      else if o.txn then begin
        (* The E19 transactional object. Its single-operation path is a
           plain sharded update (the fast path), which is exactly what
           the E1 audit row asserts: one fence per update, zero on reads
           — transactions only ever {e reduce} the per-op fence count. *)
        let module Tx = Onll_txn.Make (M) (S) in
        let obj = Tx.make ~shards:o.shards cfg in
        {
          sim;
          sink;
          update = (fun () -> ignore (Tx.txn obj [ gen_update () ]));
          read = (fun () -> ignore (Tx.read obj (gen_read ())));
          scrub = Some (fun () -> ignore (Tx.scrub obj));
          recover = Some (fun () -> Tx.recover_report obj);
        }
      end
      else if o.session then begin
        (* The object behind durable per-client sessions (E15): every
           update is an exactly-once [Onll_session.submit]. Sessions are
           attached eagerly, one per process, because region creation must
           happen once (outside any run); the E1 audit uses this arm to
           assert the session adds exactly one fence (its client-record
           append) on top of the object's own cost. *)
        let obj = C.make cfg in
        let module Sess = Onll_session.Make (M) (S) in
        let module Over = Sess.Over (C) in
        let backend = Over.backend ~log_capacity:o.log_capacity obj in
        let config =
          {
            Onll_session.default_config with
            log_capacity = 16384;
            high_watermark = 1.0;
          }
        in
        let sessions =
          Array.init max_processes (fun client ->
              Sess.attach ~config ~sink ~client backend)
        in
        {
          sim;
          sink;
          update =
            (fun () ->
              ignore (Sess.submit sessions.(M.self ()) (gen_update ())));
          read =
            (fun () -> ignore (Sess.read sessions.(M.self ()) (gen_read ())));
          scrub = Some (fun () -> ignore (C.scrub obj));
          recover = Some (fun () -> C.recover_report obj);
        }
      end
      else if o.shards > 1 then begin
        let module Sh = Onll_sharded.Make_over (M) (S) (C) in
        let obj = Sh.make ~shards:o.shards cfg in
        {
          sim;
          sink;
          update = (fun () -> ignore (Sh.update obj (gen_update ())));
          read = (fun () -> ignore (Sh.read obj (gen_read ())));
          scrub = Some (fun () -> ignore (Sh.scrub obj));
          recover = Some (fun () -> Sh.recover_report obj);
        }
      end
      else begin
        let obj = C.make cfg in
        {
          sim;
          sink;
          update = (fun () -> ignore (C.update obj (gen_update ())));
          read = (fun () -> ignore (C.read obj (gen_read ())));
          scrub = Some (fun () -> ignore (C.scrub obj));
          recover = Some (fun () -> C.recover_report obj);
        }
      end
    in
    match family name options with
    | Some o -> Some (onll o)
    | None -> (
        match name with
        | "persist-on-read" ->
            let sim = fresh_sim () in
            let module M = (val Onll_machine.Sim.machine sim) in
            let module P = Persist_on_read.Make (M) (S) in
            let obj = P.create ~log_capacity:options.log_capacity ~sink () in
            Some
              {
                sim;
                sink;
                update = (fun () -> ignore (P.update obj (gen_update ())));
                read = (fun () -> ignore (P.read obj (gen_read ())));
                scrub = None;
                recover = None;
              }
        | "shadow" ->
            let sim = fresh_sim () in
            let module M = (val Onll_machine.Sim.machine sim) in
            let module H = Shadow.Make (M) (S) in
            let obj =
              H.create ~state_capacity:options.state_capacity ~sink ()
            in
            Some
              {
                sim;
                sink;
                update = (fun () -> ignore (H.update obj (gen_update ())));
                read = (fun () -> ignore (H.read obj (gen_read ())));
                scrub = None;
                recover = None;
              }
        | "flat-combining" ->
            let sim = fresh_sim () in
            let module M = (val Onll_machine.Sim.machine sim) in
            let module F = Flat_combining.Make (M) (S) in
            let obj = F.create ~log_capacity:options.log_capacity ~sink () in
            Some
              {
                sim;
                sink;
                update = (fun () -> ignore (F.update obj (gen_update ())));
                read = (fun () -> ignore (F.read obj (gen_read ())));
                scrub = None;
                recover = None;
              }
        | "volatile" ->
            let sim = fresh_sim () in
            let module M = (val Onll_machine.Sim.machine sim) in
            let module V = Volatile.Make (M) (S) in
            let obj = V.create ~sink () in
            Some
              {
                sim;
                sink;
                update = (fun () -> ignore (V.update obj (gen_update ())));
                read = (fun () -> ignore (V.read obj (gen_read ())));
                scrub = None;
                recover = None;
              }
        | _ -> None)
end
