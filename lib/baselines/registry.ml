(** Name-indexed construction of every benchmarked implementation.

    The CLI, the lower-bound adversary and the fence audit all need "build
    implementation [name] on a fresh simulated machine and hand me opaque
    update/read thunks" — previously each had its own copy of the
    six-armed match. This registry is that match, once: {!Make.build}
    instantiates the requested implementation over a fresh {!Sim.t} (the
    given sink installed both in the machine and in the object, so machine
    and object events interleave on one logical clock) and hides the
    functor plumbing behind closures. *)

type handle = {
  sim : Onll_machine.Sim.t;
  sink : Onll_obs.Sink.t;
  update : unit -> unit;
      (** one update by the calling (scheduled) process *)
  read : unit -> unit;  (** one read-only operation *)
  scrub : (unit -> unit) option;
      (** one cooperative online-scrub step; [None] for implementations
          without one (everything but the ONLL family) *)
  recover : (unit -> Onll_core.Onll.Recovery_report.t) option;
      (** hardened post-crash recovery; [None] for implementations
          without one (everything but the ONLL family) *)
}

let names =
  [
    "onll";
    "onll+views";
    "onll-wait-free";
    "onll-mirrored";
    "onll-sharded";
    "onll-session";
    "persist-on-read";
    "shadow";
    "flat-combining";
    "volatile";
  ]

module Make (S : Onll_core.Spec.S) = struct
  let build ?(sink = Onll_obs.Sink.null) ?(log_capacity = 1 lsl 16)
      ?(state_capacity = 4096) ?(shards = 4) ~max_processes ~gen_update
      ~gen_read name =
    let fresh_sim () = Onll_machine.Sim.create ~sink ~max_processes () in
    let onll ~replicas ~local_views ~wait_free =
      let sim = fresh_sim () in
      let module M = (val Onll_machine.Sim.machine sim) in
      let cfg =
        {
          Onll_core.Onll.Config.log_capacity;
          replicas;
          local_views;
          region_suffix = "";
          sink;
        }
      in
      if wait_free then begin
        let module C = Onll_core.Onll.Make_wait_free (M) (S) in
        let obj = C.make cfg in
        {
          sim;
          sink;
          update = (fun () -> ignore (C.update obj (gen_update ())));
          read = (fun () -> ignore (C.read obj (gen_read ())));
          scrub = Some (fun () -> ignore (C.scrub obj));
          recover = Some (fun () -> C.recover_report obj);
        }
      end
      else begin
        let module C = Onll_core.Onll.Make (M) (S) in
        let obj = C.make cfg in
        {
          sim;
          sink;
          update = (fun () -> ignore (C.update obj (gen_update ())));
          read = (fun () -> ignore (C.read obj (gen_read ())));
          scrub = Some (fun () -> ignore (C.scrub obj));
          recover = Some (fun () -> C.recover_report obj);
        }
      end
    in
    match name with
    | "onll" -> Some (onll ~replicas:1 ~local_views:false ~wait_free:false)
    | "onll+views" ->
        Some (onll ~replicas:1 ~local_views:true ~wait_free:false)
    | "onll-wait-free" | "wait-free" ->
        Some (onll ~replicas:1 ~local_views:false ~wait_free:true)
    | "onll-mirrored" | "mirrored" ->
        Some (onll ~replicas:2 ~local_views:false ~wait_free:false)
    | "onll-sharded" | "sharded" ->
        let sim = fresh_sim () in
        let module M = (val Onll_machine.Sim.machine sim) in
        let module C = Onll_sharded.Make (M) (S) in
        let obj =
          C.make ~shards
            {
              Onll_core.Onll.Config.log_capacity;
              replicas = 1;
              local_views = false;
              region_suffix = "";
              sink;
            }
        in
        Some
          {
            sim;
            sink;
            update = (fun () -> ignore (C.update obj (gen_update ())));
            read = (fun () -> ignore (C.read obj (gen_read ())));
            scrub = Some (fun () -> ignore (C.scrub obj));
            recover = Some (fun () -> C.recover_report obj);
          }
    | "onll-session" | "session" ->
        (* The plain construction behind a durable per-client session
           (E15): every update is an exactly-once [Onll_session.submit].
           Sessions are attached eagerly, one per process, because region
           creation must happen once (outside any run); the E1 audit uses
           this arm to assert the session adds exactly one fence (its
           client-record append) on top of the object's one. *)
        let sim = fresh_sim () in
        let module M = (val Onll_machine.Sim.machine sim) in
        let module C = Onll_core.Onll.Make (M) (S) in
        let obj =
          C.make
            {
              Onll_core.Onll.Config.log_capacity;
              replicas = 1;
              local_views = false;
              region_suffix = "";
              sink;
            }
        in
        let module Sess = Onll_session.Make (M) (S) in
        let module Over = Sess.Over (C) in
        let backend = Over.backend ~log_capacity obj in
        let config =
          {
            Onll_session.default_config with
            log_capacity = 16384;
            high_watermark = 1.0;
          }
        in
        let sessions =
          Array.init max_processes (fun client ->
              Sess.attach ~config ~sink ~client backend)
        in
        Some
          {
            sim;
            sink;
            update =
              (fun () ->
                ignore (Sess.submit sessions.(M.self ()) (gen_update ())));
            read =
              (fun () ->
                ignore (Sess.read sessions.(M.self ()) (gen_read ())));
            scrub = Some (fun () -> ignore (C.scrub obj));
            recover = Some (fun () -> C.recover_report obj);
          }
    | "persist-on-read" ->
        let sim = fresh_sim () in
        let module M = (val Onll_machine.Sim.machine sim) in
        let module P = Persist_on_read.Make (M) (S) in
        let obj = P.create ~log_capacity ~sink () in
        Some
          {
            sim;
            sink;
            update = (fun () -> ignore (P.update obj (gen_update ())));
            read = (fun () -> ignore (P.read obj (gen_read ())));
            scrub = None;
            recover = None;
          }
    | "shadow" ->
        let sim = fresh_sim () in
        let module M = (val Onll_machine.Sim.machine sim) in
        let module H = Shadow.Make (M) (S) in
        let obj = H.create ~state_capacity ~sink () in
        Some
          {
            sim;
            sink;
            update = (fun () -> ignore (H.update obj (gen_update ())));
            read = (fun () -> ignore (H.read obj (gen_read ())));
            scrub = None;
            recover = None;
          }
    | "flat-combining" ->
        let sim = fresh_sim () in
        let module M = (val Onll_machine.Sim.machine sim) in
        let module F = Flat_combining.Make (M) (S) in
        let obj = F.create ~log_capacity ~sink () in
        Some
          {
            sim;
            sink;
            update = (fun () -> ignore (F.update obj (gen_update ())));
            read = (fun () -> ignore (F.read obj (gen_read ())));
            scrub = None;
            recover = None;
          }
    | "volatile" ->
        let sim = fresh_sim () in
        let module M = (val Onll_machine.Sim.machine sim) in
        let module V = Volatile.Make (M) (S) in
        let obj = V.create ~sink () in
        Some
          {
            sim;
            sink;
            update = (fun () -> ignore (V.update obj (gen_update ())));
            read = (fun () -> ignore (V.read obj (gen_read ())));
            scrub = None;
            recover = None;
          }
    | _ -> None
end
