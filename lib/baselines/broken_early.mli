(** Deliberately broken implementation for validating the oracle.

    Linearizes updates at insertion and lets readers return without helping
    persistence — the first bad branch of the paper's §3.1 case analysis. A
    reader can observe an update that a subsequent crash erases, violating
    durable linearizability. The test suite drives this implementation into
    that window and asserts {!Onll_histcheck.Histcheck} rejects the
    recorded history. {b Never} use outside the oracle tests. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  type t

  val create : ?log_capacity:int -> ?sink:Onll_obs.Sink.t -> unit -> t
  val update : t -> S.update_op -> S.value
  (** @raise Onll_plog.Plog.Full when the caller's log fills — baselines
      deliberately do not compact (cost comparisons only; size logs for the
      workload). *)

  val read : t -> S.read_op -> S.value
  (** Unsafely observes linearized-but-unpersisted operations. *)

  val recover : t -> unit
  (** Rebuilds from whatever survived; stops at the first index gap. *)
end
