(** Non-durable lock-free baseline: a single CAS-updated transient variable.

    Zero persistent fences and zero durability — the throughput ceiling and
    fence-count floor every durable implementation is compared against. Its
    role in the lower-bound experiment (E2) is to show what "0 fences"
    costs: {!Make.recover} reinitialises, so any state is lost at a crash. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  type t

  val create : ?sink:Onll_obs.Sink.t -> unit -> t
  val update : t -> S.update_op -> S.value
  val read : t -> S.read_op -> S.value

  val recover : t -> unit
  (** Reinitialisation — nothing survives a crash. *)
end
