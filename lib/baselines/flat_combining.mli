(** Lock-based flat combining (paper §8's closing discussion).

    Processes announce updates in per-process slots; the lock holder (the
    combiner) appends the whole announced batch to its persistent log with
    a {e single} persistent fence, applies it to a transient mirror and
    publishes the results. Fences per operation can thus drop below the
    lower bound — but only because waiting processes pay the fence's price
    in spinning: the construction is blocking, and parking the combiner
    starves everyone (the Theorem 6.3 experiment shows this as a
    livelock). *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  type t

  val create : ?log_capacity:int -> ?sink:Onll_obs.Sink.t -> unit -> t

  val update : t -> S.update_op -> S.value
  (** Announce and either combine (if the lock is free) or spin until a
      combiner serves the announcement.
      @raise Onll_plog.Plog.Full when the combiner's log fills — baselines
      deliberately do not compact (cost comparisons only; size logs for the
      workload). *)

  val read : t -> S.read_op -> S.value
  (** Served from the mirror, which is published only after the batch
      fence: zero fences, durable observations. *)

  val recover : t -> unit
  val current_state : t -> S.state

  val batch_stats : t -> int * int
  (** (batches appended, operations covered) — operations/batches is the
      combining factor. *)
end
