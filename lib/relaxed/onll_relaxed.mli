(** Bounded-staleness relaxed mode (E20): risk-budgeted lazy fences.

    Theorem 5.1 prices strict durable linearizability at one persistent
    fence per update. This wrapper relaxes the contract to {e buffered}
    durable linearizability ("The Path to Durable Linearizability"): an
    update is acknowledged {b fence-free} into a volatile tail bounded by
    a {b risk budget} — at most [max_unfenced_ops] acked operations (and,
    with a clock, at most [max_unfenced_ns] of age) may be unfenced at
    any moment. A single lazy fence (one CRC-framed coordinator record,
    the E19 commit-record mechanism) drains the whole tail when the
    budget fills, when a strict update piggybacks on it, or on an
    explicit {!Make_over.flush}. Steady-state cost is therefore
    [1/k] fences per update instead of 1.

    What a crash may cost is exactly the budget: the unfenced {e suffix}
    of the linearization, never more, never an interior operation.
    Recovery names each lost acknowledgement in
    {!Onll_core.Onll.Recovery_report.t.lost_acked} — budgeted loss is
    admitted and precisely accounted, not silent — and then converges to
    an ordinary durably linearizable state.

    Why the tail is one {e global} suffix (not per-process): acked
    operations are available immediately, so later fenced operations'
    fuzzy windows do not cover them. If process A could drain its own
    ops while a lower-index op of B stayed unfenced, a crash would lose
    an {e interior} operation — the post-crash state would not be a
    prefix of the pre-crash linearization, which is exactly what
    buffered durable linearizability (and the E20 checker,
    {!Histcheck.Make.check_buffered}) forbids. Every drain therefore
    covers the whole tail, and every fenced ack piggybacks on its
    deferred predecessors.

    Observability: the wrapper registers [fences.deferred] (acks that
    paid no fence), [fences.drains] and [risk.peak] (deepest tail ever =
    worst-case ops at risk) in the sink's registry. *)

module Report = Onll_core.Onll.Recovery_report

(** Wrap an existing {!Onll_core.Onll.TXN_CAPABLE} object instance. The
    wrapper must mediate {e every} update on the object from then on
    (reads may keep going direct): an update bypassing it would fence a
    fuzzy window that skips the acked-available tail and break the
    prefix argument above. *)
module Make_over
    (M : Onll_machine.Machine_sig.S)
    (S : Onll_core.Spec.S)
    (C :
      Onll_core.Onll.TXN_CAPABLE
        with type state = S.state
         and type update_op = S.update_op
         and type read_op = S.read_op
         and type value = S.value) : sig
  type t

  val attach :
    ?max_unfenced_ops:int ->
    ?max_unfenced_ns:int64 ->
    ?now_ns:(unit -> int64) ->
    ?alloc:(unit -> int) ->
    Onll_core.Onll.Config.t ->
    C.t ->
    t
  (** [attach cfg obj] wraps [obj]. [max_unfenced_ops] (default 8, must
      be >= 1) is the risk budget k; [max_unfenced_ns] with [now_ns]
      adds an age bound checked lazily at operation boundaries (no
      background thread — an idle object holds its tail until the next
      update or {!flush}). [cfg] sizes and names the per-process
      coordinator logs ([<spec><suffix>.<n>.relaxcoord.<p>]).

      [alloc] supplies each relaxed update's sequence identity from an
      external monotone never-reuse allocator instead of the object's
      own cursor. Pass it when another update path on the same process
      (e.g. the serve layer's detectable-execution sessions, which draw
      from a durable object-sequence allocator) shares the object:
      routing both paths through one allocator keeps their identities
      disjoint, which the core's reuse guard requires. *)

  val update :
    ?budget:int -> t -> S.update_op -> Onll_core.Onll.op_id * S.value
  (** Relaxed ack: order + linearize, no fence unless the tail reaches
      the effective budget (the minimum budget any pending op was acked
      under — [?budget] lets a caller, e.g. a staleness-k session tier,
      demand a tighter bound than the object default; it can only
      tighten, never widen). Returns the operation's durable identity so
      the caller can ask {!was_linearized} after a crash. *)

  val update_strict : t -> S.update_op -> Onll_core.Onll.op_id * S.value
  (** Classic durable-linearizability ack: exactly one fence (the
      Theorem 5.1 cost), which also drains every deferred predecessor —
      the piggybacked lazy fence. *)

  val read : t -> S.read_op -> S.value
  (** Zero fences. Sees the acked-volatile frontier: that is the relaxed
      contract (pre-crash reads may observe operations a crash would
      lose; post-recovery reads never do). *)

  val flush : t -> unit
  (** Drain the tail now (one fence if it was non-empty, attributed to
      the checkpoint class, not to per-update accounting). After [flush]
      returns, every previously acked operation is durable. *)

  val pending_ops : t -> int
  (** Current tail depth = acked operations at risk right now. *)

  val risk_peak : t -> int
  (** Deepest tail ever observed; never exceeds the effective budget. *)

  val checkpoint : t -> int
  (** Checkpoint the inner object. The summary covers the tail (acked
      operations are available), so the tail is durable afterwards and
      cleared. *)

  val recover_report : t -> Report.t
  (** Hardened recovery: salvage coordinator logs, recover the inner
      object with the drain records as the committed-operation oracle,
      re-apply stranded drained operations exactly-once, then settle the
      acknowledgement ledger — every operation acked since the last
      recovery is either linearized in the rebuilt state or listed in
      [lost_acked]. [lost_acked] is always the unfenced suffix at the
      crash, at most the budget deep (minus operations an incidental
      checkpoint made durable). *)

  val recover_unhardened : t -> unit
  (** Calibration baseline: ignores drain records and the ledger.
      Silently loses drained (fenced!) operations and reports no
      [lost_acked] — the behaviour the E20 chaos campaign and the
      buffered checker must catch. *)

  val was_linearized : t -> Onll_core.Onll.op_id -> bool
  val lost_acked : t -> Onll_core.Onll.op_id list
  (** The [lost_acked] set of the most recent {!recover_report}. *)

  val current_state : t -> S.state
  val scrub : t -> Onll_plog.Plog.scrub_report
  val degraded : t -> bool
  val snapshot : t -> Onll_core.Onll.Snapshot.t
  val sink : t -> Onll_obs.Sink.t

  val inner : t -> C.t
  (** The wrapped object — for reads and introspection only; updating it
      directly voids the prefix guarantee. *)
end

(** The self-contained construction: {!Make_over} over a fresh
    {!Onll_core.Onll.Make} object it creates itself — what the registry
    exposes as [onll-relaxed]. *)
module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  module C :
    Onll_core.Onll.TXN_CAPABLE
      with type state = S.state
       and type update_op = S.update_op
       and type read_op = S.read_op
       and type value = S.value

  include module type of Make_over (M) (S) (C)

  val make :
    ?max_unfenced_ops:int ->
    ?max_unfenced_ns:int64 ->
    ?now_ns:(unit -> int64) ->
    ?alloc:(unit -> int) ->
    Onll_core.Onll.Config.t ->
    t
end
