(** Bounded-staleness relaxed mode (E20); see onll_relaxed.mli. *)

module Onll = Onll_core.Onll
module Metrics = Onll_obs.Metrics
module Report = Onll.Recovery_report

module Make_over
    (M : Onll_machine.Machine_sig.S)
    (S : Onll_core.Spec.S)
    (C :
      Onll.TXN_CAPABLE
        with type state = S.state
         and type update_op = S.update_op
         and type read_op = S.read_op
         and type value = S.value) =
struct
  module L = Onll_plog.Plog.Make (M)
  module A = Onll_core.Attribution.Make (M)

  (* {2 The drain record}

     One CRC-framed entry in the drainer's coordinator log: every
     operation of the drained tail with its identity and the execution
     index it was staged at. Exactly the E19 commit-record shape with the
     whole tail as one "transaction": recovery feeds the indices to
     {!Onll.TXN_CAPABLE.recover_txn} as the oracle, so a drained
     operation whose trace node never reached a per-process log is
     adopted in place rather than reported as a gap. *)

  type sub = { d_proc : int; d_seq : int; d_idx : int; d_op : S.update_op }

  let sub_codec =
    let open Onll_util.Codec in
    map
      (fun ((d_proc, d_seq, d_idx), d_op) -> { d_proc; d_seq; d_idx; d_op })
      (fun { d_proc; d_seq; d_idx; d_op } -> ((d_proc, d_seq, d_idx), d_op))
      (pair (triple int int int) S.update_codec)

  let drain_codec = Onll_util.Codec.list sub_codec

  (* An acknowledged-but-possibly-unfenced operation: its sole durable
     hope is the next drain (or an incidental checkpoint). *)
  type pending = {
    p_id : Onll.op_id;
    p_idx : int;
    p_op : S.update_op;
    p_at : int64;  (** stamp from [now_ns] at ack time; 0 without a clock *)
    p_budget : int;  (** the staleness bound this op was acked under *)
  }

  type t = {
    obj : C.t;
    coord : L.t array;  (** per process; the lazy-fence durability point *)
    budget_ops : int;  (** default k: max acked-unfenced operations *)
    budget_ns : int64 option;  (** max age of the oldest unfenced ack *)
    now_ns : (unit -> int64) option;
    alloc : (unit -> int) option;
        (** external identity allocator (e.g. the serve layer's durable
            object-sequence allocator) shared with other update paths on
            the same process; [None] = the object's own cursor *)
    lock : bool M.Tvar.t;
        (** serialises tail manipulation and drains across processes; the
            tail is one global suffix, never per-process (see the prefix
            argument in the mli) *)
    mutable tail : pending list;  (** oldest first; the ops at risk *)
    acked : (Onll.op_id, unit) Hashtbl.t;
        (** every acked operation still at risk — drains and checkpoints
            prune what they made durable, so the ledger stays bounded by
            the budget instead of growing with total relaxed ops. Plain
            transient bookkeeping — it deliberately survives a simulated
            crash, so recovery can name exactly which acks the crash
            voided. *)
    mutable last_lost : Onll.op_id list;
    mutable peak : int;
    ostats : Onll_obs.Opstats.t;
    c_deferred : Metrics.counter;  (** acks that paid no fence *)
    c_drains : Metrics.counter;
    g_peak : Metrics.gauge;  (** deepest tail ever = worst-case ops at risk *)
  }

  let instances = ref 0

  let attach ?(max_unfenced_ops = 8) ?max_unfenced_ns ?now_ns ?alloc
      (cfg : Onll.Config.t) obj =
    if max_unfenced_ops < 1 then
      invalid_arg "Onll_relaxed.attach: max_unfenced_ops must be >= 1";
    let sink = cfg.Onll.Config.sink in
    let n = !instances in
    incr instances;
    let reg =
      if Onll_obs.Sink.active sink then Onll_obs.Sink.registry sink
      else Metrics.create ()
    in
    {
      obj;
      coord =
        Array.init M.max_processes (fun p ->
            L.create ~sink ~replicas:cfg.Onll.Config.replicas
              ~name:
                (Printf.sprintf "%s%s.%d.relaxcoord.%d" S.name
                   cfg.Onll.Config.region_suffix n p)
              ~capacity:cfg.Onll.Config.log_capacity ());
      budget_ops = max_unfenced_ops;
      budget_ns = max_unfenced_ns;
      now_ns;
      alloc;
      lock = M.Tvar.make false;
      tail = [];
      acked = Hashtbl.create 64;
      last_lost = [];
      peak = 0;
      ostats = Onll_obs.Opstats.make sink;
      c_deferred = Metrics.counter reg "fences.deferred";
      c_drains = Metrics.counter reg "fences.drains";
      g_peak = Metrics.gauge reg "risk.peak";
    }

  let inner t = t.obj
  let sink t = Onll_obs.Opstats.sink t.ostats
  let pending_ops t = List.length t.tail
  let risk_peak t = t.peak
  let lost_acked t = t.last_lost

  (* Test-and-test-and-set, as the group-commit construction does. *)
  let lock t =
    while
      not
        ((not (M.Tvar.get t.lock))
        && M.Tvar.cas t.lock ~expected:false ~desired:true)
    do
      M.yield ()
    done

  let unlock t = M.Tvar.set t.lock false

  (* No blanket [Fun.protect]: releasing the lock is a machine step, and
     a simulated process being killed by a crash must not step while
     unwinding (the scheduler forbids it) — the kill passes through with
     the lock held, and {!recover_report} resets it. Every {e other}
     escaping exception (a sticky fsync degradation, a transient fault, a
     caller error) is one the caller may catch and keep serving past, so
     the lock must be released on the way out: leaking it would wedge
     every later update, flush and quiesce on the object in the lock's
     busy-wait. *)
  let recoverable = function Onll_sched.Sched.Preempted -> false | _ -> true

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e when recoverable e ->
        unlock t;
        raise e

  (* {2 Coordinator-log space} *)

  (* A checkpoint of the inner object summarises everything available —
     which includes the whole tail, since acked operations are available
     the moment they are acked. Afterwards every drain record is covered
     and the tail itself is durable, so both are dropped. Must hold the
     lock. *)
  let prune_acked t pendings =
    List.iter (fun pd -> Hashtbl.remove t.acked pd.p_id) pendings

  let compact_locked t =
    ignore (C.checkpoint t.obj);
    Array.iter
      (fun l ->
        L.set_head l (L.entry_count l);
        L.relocate l)
      t.coord;
    prune_acked t t.tail;
    t.tail <- []

  let append_coord t p payload =
    match L.try_append t.coord.(p) payload with
    | Ok () -> ()
    | Error `Full -> (
        compact_locked t;
        match L.try_append t.coord.(p) payload with
        | Ok () -> ()
        | Error `Full -> raise (Onll.Log_full (L.name t.coord.(p))))

  (* {2 The lazy fence} *)

  (* ONE fenced coordinator append covering the whole tail. Draining the
     whole tail (never a sub-range) is what keeps the durable set a
     prefix of the linearization at all times. Must hold the lock. *)
  let drain_locked t =
    match t.tail with
    | [] -> ()
    | tail ->
        let subs =
          List.map
            (fun pd ->
              {
                d_proc = pd.p_id.Onll.id_proc;
                d_seq = pd.p_id.Onll.id_seq;
                d_idx = pd.p_idx;
                d_op = pd.p_op;
              })
            tail
        in
        append_coord t (M.self ())
          (Onll_util.Codec.encode drain_codec subs);
        Metrics.incr t.c_drains;
        (* fenced = durable: a drained op can never appear in lost_acked,
           so it leaves the ledger here *)
        prune_acked t tail;
        t.tail <- []

  let now t = match t.now_ns with None -> 0L | Some f -> f ()

  let over_time_budget t =
    match (t.budget_ns, t.tail) with
    | Some limit, oldest :: _ ->
        Int64.sub (now t) oldest.p_at >= limit
    | _ -> false

  (* Shared ack path. [strict]: the caller wants classic durable
     linearizability for this operation — it is staged like the others
     but the tail (including it) is drained before the ack, so it costs
     exactly the one fence of Theorem 5.1 and lazily covers every
     deferred predecessor (piggybacking). Relaxed: the ack is fence-free
     unless it fills the risk budget. *)
  let update_impl t ~strict ?budget op =
    (* validate before touching the lock, like {!attach} does: a bad
       argument is a recoverable caller error, never a wedged object *)
    let k =
      match budget with
      | None -> t.budget_ops
      | Some b ->
          if b < 1 then
            invalid_arg "Onll_relaxed.update: budget must be >= 1";
          min b t.budget_ops
    in
    A.attributed t.ostats Onll_obs.Opstats.update_done (fun () ->
        with_lock t (fun () ->
            let seq =
              match t.alloc with
              | None -> C.reserve_seq t.obj
              | Some f ->
                  (* a shared monotone allocator: every consumer on this
                     process uses allocator identities, so the object's
                     cursor trails the allocated value. Burn the cursor
                     up to it — identities passed over were drawn and
                     abandoned (dead by the allocator's never-reuse
                     contract), never live. *)
                  let s = f () in
                  while C.reserve_seq t.obj < s do
                    ()
                  done;
                  s
            in
            let id = { Onll.id_proc = M.self (); id_seq = seq } in
            let payload =
              Onll_util.Codec.encode drain_codec
                [ { d_proc = id.Onll.id_proc; d_seq = seq; d_idx = -1; d_op = op } ]
            in
            let st = C.stage_txn t.obj ~seq ~payload op in
            t.tail <-
              t.tail
              @ [
                  {
                    p_id = id;
                    p_idx = C.staged_idx st;
                    p_op = op;
                    p_at = now t;
                    p_budget = k;
                  };
                ];
            let depth = List.length t.tail in
            if depth > t.peak then begin
              t.peak <- depth;
              Metrics.set t.g_peak (float_of_int t.peak)
            end;
            (* The tightest bound any pending op was acked under governs
               the whole tail: an op promised staleness <= k must never
               sit in a deeper unfenced suffix. *)
            let threshold =
              List.fold_left (fun m pd -> min m pd.p_budget) max_int t.tail
            in
            let drained = strict || depth >= threshold || over_time_budget t in
            if drained then drain_locked t else Metrics.incr t.c_deferred;
            let v = C.finish_txn t.obj st in
            (* a drained op is already durable — only unfenced acks enter
               the ledger (drain_locked prunes the rest) *)
            if not drained then Hashtbl.replace t.acked id ();
            M.return_point ();
            (id, v)))

  let update ?budget t op = update_impl t ~strict:false ?budget op
  let update_strict t op = update_impl t ~strict:true op

  let read t op =
    (* Reads see the acked-volatile frontier — that is the relaxed
       contract. Still zero fences, zero shared writes. *)
    C.read t.obj op

  (* The explicit lazy fence: attributed to the checkpoint class, never
     to the per-update Theorem 5.1 accounting — it is maintenance
     durability work, like a checkpoint. *)
  let flush t =
    A.attributed t.ostats Onll_obs.Opstats.checkpoint_done (fun () ->
        with_lock t (fun () -> drain_locked t))

  let checkpoint t =
    with_lock t (fun () ->
        let upto = C.checkpoint t.obj in
        (* the checkpoint summarised every available op — tail included *)
        prune_acked t t.tail;
        t.tail <- [];
        upto)

  let was_linearized t id = C.was_linearized t.obj id
  let current_state t = C.current_state t.obj

  (* {2 Recovery} *)

  let decode_drains_tolerant log failures =
    List.filter_map
      (fun e ->
        match Onll_util.Codec.decode drain_codec e with
        | subs -> Some subs
        | exception _ ->
            incr failures;
            None)
      (L.entries log)

  (* Hardened recovery: salvage the coordinator logs, recover the inner
     object with the drained indices as the oracle, re-apply any drained
     operation the rebuilt trace could not place, then settle the ledger:
     every at-risk ack (drained acks left the ledger when fenced — they
     are durable by construction) is either linearized now or named in
     [lost_acked]. The lost set is, by construction, the unfenced suffix
     at the crash (minus anything an incidental checkpoint saved). *)
  let recover_report t =
    M.Tvar.set t.lock false;
    let failures = ref 0 in
    let coord_salvage =
      Array.to_list t.coord |> List.map (fun l -> (L.name l, L.recover l))
    in
    let drained =
      Array.to_list t.coord
      |> List.concat_map (fun l -> decode_drains_tolerant l failures)
      |> List.concat
    in
    let extra =
      List.filter_map
        (fun s ->
          if s.d_idx >= 0 then
            Some (s.d_idx, { Onll.id_proc = s.d_proc; id_seq = s.d_seq }, s.d_op)
          else None)
        drained
    in
    let r, _helper_payloads = C.recover_txn t.obj ~extra in
    (* Drained ops stranded above a hole (their oracle index unreachable)
       are re-applied exactly-once, in staging order, and made durable. *)
    let seen = Hashtbl.create 16 in
    let missing =
      List.sort (fun a b -> compare a.d_idx b.d_idx) drained
      |> List.filter_map (fun s ->
             let id = { Onll.id_proc = s.d_proc; id_seq = s.d_seq } in
             if Hashtbl.mem seen id || C.was_linearized t.obj id then None
             else begin
               Hashtbl.replace seen id ();
               Some (id, s.d_op)
             end)
    in
    let injected = List.length (C.inject_txn_run t.obj missing) in
    (* Settle the ledger: an acked op that is still not linearized was
       lost with the volatile tail. *)
    let lost =
      Hashtbl.fold
        (fun id () acc ->
          if C.was_linearized t.obj id then acc else id :: acc)
        t.acked []
      |> List.sort (fun a b ->
             compare (a.Onll.id_proc, a.Onll.id_seq)
               (b.Onll.id_proc, b.Onll.id_seq))
    in
    t.last_lost <- lost;
    t.tail <- [];
    Hashtbl.reset t.acked;
    {
      r with
      Report.recovered_ops = r.Report.recovered_ops + injected;
      decode_failures = r.Report.decode_failures + !failures;
      salvage = coord_salvage @ r.Report.salvage;
      lost_acked = lost @ r.Report.lost_acked;
    }

  (* The calibration baseline: forgets the drain records and the ledger,
     exactly the mistake the checker and the chaos audits must catch. *)
  let recover_unhardened t =
    M.Tvar.set t.lock false;
    t.tail <- [];
    t.last_lost <- [];
    Hashtbl.reset t.acked;
    C.recover_unhardened t.obj;
    Array.iter L.recover_unhardened t.coord

  let scrub t =
    let r = C.scrub t.obj in
    Array.fold_left
      (fun acc l -> Onll_plog.Plog.add_scrub acc (L.scrub l))
      r t.coord

  let degraded t = C.degraded t.obj

  let snapshot t =
    let s = C.snapshot t.obj in
    let coord_logs =
      Array.to_list t.coord
      |> List.map (fun l ->
             let ops_per_entry =
               List.map
                 (fun e ->
                   match Onll_util.Codec.decode drain_codec e with
                   | subs -> List.length subs
                   | exception _ -> 0)
                 (L.entries l)
             in
             {
               Onll.Snapshot.log_name = L.name l;
               live_bytes = L.live_bytes l;
               used_bytes = L.used_bytes l;
               entry_count = List.length ops_per_entry;
               ops_per_entry;
             })
    in
    { s with Onll.Snapshot.logs = s.Onll.Snapshot.logs @ coord_logs }
end

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  module C = Onll.Make (M) (S)
  module R = Make_over (M) (S) (C)
  include R

  let make ?max_unfenced_ops ?max_unfenced_ns ?now_ns ?alloc cfg =
    attach ?max_unfenced_ops ?max_unfenced_ns ?now_ns ?alloc cfg (C.make cfg)
end
