(** Deterministic cooperative scheduler for simulated concurrent executions.

    The paper's model (§2.2) is a set of processes with no assumptions on
    relative speeds, subject to full-system crashes. This module realises
    that model with OCaml 5 effect handlers: every shared-memory or NVM
    primitive executed by a simulated process performs a {!step} effect, the
    scheduler captures the process's continuation, and a {!Strategy.t}
    decides who runs next — or that the system crashes now.

    Key property: a process paused at a step has {e not yet executed} the
    corresponding primitive; the primitive's action runs when (and only when)
    the process is next scheduled. "Preempt p just before its persistent
    fence" — the schedule used in the lower-bound proof — is therefore
    expressed directly as {!Strategy.run_until} with a label predicate.

    The scheduler is strictly single-threaded; determinism is total given a
    strategy (and its seed). *)

(** {1 Labels}

    Each scheduling point is tagged so that strategies and execution traces
    can recognise it. *)

type label =
  | Prim of string  (** a shared-memory primitive, e.g. ["tvar.cas"] *)
  | Fence  (** a fence with no pending write-backs (cheap) *)
  | Pfence  (** a fence with pending write-backs: a persistent fence *)
  | Return_point  (** an operation is about to return to its caller *)
  | Custom of string  (** user-defined breakpoint *)

val pp_label : Format.formatter -> label -> unit
val label_to_string : label -> string

(** {1 Instrumentation points}

    Called by the machine layer (and usable directly by test code). Outside
    a running scheduler both are cheap no-ops, so the same code can run in a
    plain single-threaded context (e.g. recovery routines in tests). *)

val step : label -> unit
(** Yield to the scheduler at a point labelled [label]. *)

val current_proc : unit -> int
(** Id of the currently scheduled process; [0] outside a run (recovery and
    single-threaded test code are conventionally process 0). *)

val in_scheduler : unit -> bool

(** {1 Strategies} *)

module Strategy : sig
  type view = {
    runnable : unit -> int list;
        (** processes that can take a step, ascending *)
    label_of : int -> label option;
        (** label a process is paused at ([None] if not yet started) *)
    steps : unit -> int;  (** scheduling decisions taken so far *)
    finished : int -> bool;
  }

  type decision =
    | Schedule of int
    | Crash_now  (** full-system crash: kill everyone, fire crash hooks *)
    | Stop of string  (** abandon the run (procs are discarded, no hooks) *)

  type t = view -> decision

  val round_robin : t
  (** Fair rotation over runnable processes. *)

  val random : seed:int -> t
  (** Uniform choice among runnable processes; reproducible from the seed. *)

  val random_with_crash : seed:int -> crash_at_step:int -> t
  (** Random scheduling, crashing at the given step (or at the end if the
      run finishes first — in which case the run completes normally). *)

  val pct : seed:int -> depth:int -> expected_steps:int -> t
  (** Probabilistic concurrency testing (Burckhardt et al., ASPLOS'10):
      processes get random distinct priorities; the highest-priority
      runnable process always runs; at [depth - 1] random change points
      (drawn from [0, expected_steps)) the running process's priority drops
      below everyone's. Finds any bug of depth [d] with probability
      >= 1/(n * k^(d-1)) per seed — far better than uniform random for
      ordering bugs. Deterministic per seed. *)

  (** Scripted schedules, for proof executions and figure replays. *)
  type cmd =
    | Run_steps of int * int  (** [(p, k)]: schedule [p] for [k] steps *)
    | Run_until of int * (label -> bool)
        (** schedule [p] until it pauses at a matching label (the matching
            primitive has {e not} executed yet) or finishes *)
    | Run_to_completion of int
    | Crash_here
    | Round_robin_rest  (** finish everything fairly *)

  val run_until_return : int -> cmd
  (** [Run_until (p, fun l -> l = Return_point)] — pause [p] just before its
      current operation responds. *)

  val run_until_pfence : int -> cmd
  (** Pause [p] just before its next persistent fence. *)

  val script : ?fallback:t -> cmd list -> t
  (** Execute commands in order; once exhausted, delegate to [fallback]
      (default {!round_robin}). Commands targeting finished processes are
      skipped. *)
end

(** {1 Worlds and runs} *)

module World : sig
  type t

  type outcome =
    | Completed  (** every process returned *)
    | Crashed  (** the strategy decided [Crash_now] *)
    | Stopped of string

  val create : ?trace_log:bool -> unit -> t
  (** [trace_log] records every scheduling decision for later inspection
      (default false). *)

  val on_crash : t -> (unit -> unit) -> unit
  (** Register a hook fired on [Crash_now], after all processes have been
      killed — e.g. [Memory.crash]. Hooks persist across runs (NVM outlives
      crashes) and fire in registration order. *)

  val run :
    ?max_steps:int -> t -> Strategy.t -> (int -> unit) array -> outcome
  (** [run t strategy procs] executes the processes (each applied to its own
      id) to an outcome. A run is one crash-free era; model a crash-recovery
      execution as a [run] ending in [Crashed], followed by recovery code,
      followed by another [run] on the same world.

      @raise Stuck if [max_steps] (default 2_000_000) scheduling decisions
      are exceeded, which indicates a livelocked schedule.
      Any exception raised by a process aborts the run (other processes are
      discarded) and is re-raised. *)

  val steps_taken : t -> int
  (** Scheduling decisions in the most recent run. *)

  val trace : t -> (int * label) list
  (** Most recent run's executed (process, primitive-label) sequence, oldest
      first; empty unless [trace_log] was set. The label of an entry is the
      primitive the process {e performed} when scheduled (its pre-pause
      label); a process's very first scheduling has no prior primitive and
      is recorded as [Custom "start"]. *)
end

exception Stuck of string

exception Preempted
(** The kill exception: {!World} discontinues every live process with it
    at a crash (or when a run is abandoned). Process code must never
    catch it and must not take machine steps while unwinding from it —
    the scheduler forbids stepping during a kill. Unwind-protection code
    (e.g. a lock wrapper releasing its lock on recoverable errors) may
    test for it in a [when] guard to let a kill pass through untouched. *)
