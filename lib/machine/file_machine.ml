(* The file-backed machine: real durability, fsync fences. See
   file_machine.mli. *)

external sched_yield : unit -> unit = "onll_sched_yield" [@@noalloc]

type t = {
  fm : Onll_nvm.File_memory.t;
  next_id : int Atomic.t;
  key : int option Domain.DLS.key;
}

let create ?sector_size ?retry_budget ?backoff_ns ?(sink = Onll_obs.Sink.null)
    ~dir ~max_processes () =
  {
    fm =
      Onll_nvm.File_memory.create ?sector_size ?retry_budget ?backoff_ns
        ~sink ~dir ~max_processes ();
    next_id = Atomic.make 0;
    key = Domain.DLS.new_key (fun () -> None);
  }

let memory t = t.fm

let register t =
  match Domain.DLS.get t.key with
  | Some id -> id
  | None ->
      let id = Atomic.fetch_and_add t.next_id 1 in
      if id >= Onll_nvm.File_memory.max_processes t.fm then
        failwith "File_machine.register: too many domains for max_processes";
      Domain.DLS.set t.key (Some id);
      id

let self_exn t =
  match Domain.DLS.get t.key with
  | Some id -> id
  | None ->
      failwith
        "File_machine: domain not registered (call File_machine.register)"

let sink t = Onll_nvm.File_memory.sink t.fm
let set_sink t s = Onll_nvm.File_memory.set_sink t.fm s
let close t = Onll_nvm.File_memory.close t.fm
let degraded t = Onll_nvm.File_memory.degraded t.fm

module Make_machine (X : sig
  val file : t
end) : Machine_sig.S = struct
  let m = X.file
  let fm = m.fm
  let id = "file"
  let max_processes = Onll_nvm.File_memory.max_processes fm

  module Tvar = struct
    type 'a t = 'a Atomic.t

    let make = Atomic.make
    let get = Atomic.get
    let set = Atomic.set
    let cas v ~expected ~desired = Atomic.compare_and_set v expected desired
  end

  module Pm = struct
    type t = Onll_nvm.File_memory.Region.t

    module R = Onll_nvm.File_memory.Region

    let create ~name ~size = Onll_nvm.File_memory.region fm ~name ~size
    let size = R.size
    let store r ~off data = R.store r ~proc:(self_exn m) ~off data
    let load r ~off ~len = R.load r ~proc:(self_exn m) ~off ~len
    let store_int64 r ~off v = R.store_int64 r ~proc:(self_exn m) ~off v
    let load_int64 r ~off = R.load_int64 r ~proc:(self_exn m) ~off
    let flush r ~off ~len = R.flush r ~proc:(self_exn m) ~off ~len
  end

  let fence () = Onll_nvm.File_memory.fence fm ~proc:(self_exn m)
  let self () = self_exn m
  let return_point () = ()
  let pause () = Domain.cpu_relax ()
  let yield () = sched_yield ()

  let persistent_fences () =
    (Onll_nvm.File_memory.stats fm).Onll_nvm.File_memory.Stats
      .persistent_fences

  let persistent_fences_by ~proc =
    Onll_nvm.File_memory.persistent_fences_by fm ~proc
end

let machine t : Machine_sig.t =
  (module Make_machine (struct
    let file = t
  end))
