external sched_yield : unit -> unit = "onll_sched_yield" [@@noalloc]
external monotonic_ns : unit -> int64 = "onll_monotonic_ns"

type proc_slot = {
  mutable pending : int;  (* flushed-but-unfenced line count *)
  mutable pfences : int;
  _pad : int array;  (* keep slots on separate cache lines *)
}

type t = {
  max_processes : int;
  mutable fence_ns : int;
  mutable sink : Onll_obs.Sink.t;
  slots : proc_slot array;
  next_id : int Atomic.t;
  key : int option Domain.DLS.key;
  region_names : (string, unit) Hashtbl.t;
  names_lock : Mutex.t;
}

let iters_per_ns = ref 0.0

let calibrate () =
  if !iters_per_ns = 0.0 then begin
    (* Measure a pure spin loop against the monotonic clock — never the
       wall clock, whose NTP steps would silently skew the calibrated
       fence duration. The loop body matches [spin] below. *)
    let iters = 50_000_000 in
    let t0 = monotonic_ns () in
    let x = ref 0 in
    for i = 1 to iters do
      if !x land 1 = 0 then incr x else x := !x + i land 1
    done;
    let t1 = monotonic_ns () in
    ignore (Sys.opaque_identity !x);
    let ns = Int64.to_float (Int64.sub t1 t0) in
    iters_per_ns := float_of_int iters /. Float.max ns 1.0
  end;
  !iters_per_ns

let spin_iters ns = int_of_float (float_of_int ns *. calibrate ())

let spin iters =
  let x = ref 0 in
  for i = 1 to iters do
    if !x land 1 = 0 then incr x else x := !x + i land 1
  done;
  ignore (Sys.opaque_identity !x)

let create ?(fence_ns = 500) ?(sink = Onll_obs.Sink.null) ~max_processes () =
  if max_processes < 1 then invalid_arg "Native.create: max_processes < 1";
  ignore (calibrate ());
  {
    max_processes;
    fence_ns;
    sink;
    slots =
      Array.init max_processes (fun _ ->
          { pending = 0; pfences = 0; _pad = Array.make 14 0 });
    next_id = Atomic.make 0;
    key = Domain.DLS.new_key (fun () -> None);
    region_names = Hashtbl.create 8;
    names_lock = Mutex.create ();
  }

let register t =
  match Domain.DLS.get t.key with
  | Some id -> id
  | None ->
      let id = Atomic.fetch_and_add t.next_id 1 in
      if id >= t.max_processes then
        failwith "Native.register: too many domains for max_processes";
      Domain.DLS.set t.key (Some id);
      id

let self_exn t =
  match Domain.DLS.get t.key with
  | Some id -> id
  | None -> failwith "Native: domain not registered (call Native.register)"

let fence_ns t = t.fence_ns
let set_fence_ns t ns = t.fence_ns <- ns
let sink t = t.sink
let set_sink t s = t.sink <- s

let persistent_fences t =
  Array.fold_left (fun acc s -> acc + s.pfences) 0 t.slots

let reset_stats t =
  Array.iter
    (fun s ->
      s.pending <- 0;
      s.pfences <- 0)
    t.slots

let run_workers t bodies =
  let domains =
    List.map
      (fun body ->
        Domain.spawn (fun () ->
            let id = register t in
            body id))
      bodies
  in
  List.map Domain.join domains

module Make_machine (X : sig
  val native : t
end) : Machine_sig.S = struct
  let n = X.native
  let id = "native"
  let max_processes = n.max_processes

  module Tvar = struct
    type 'a t = 'a Atomic.t

    let make = Atomic.make
    let get = Atomic.get
    let set = Atomic.set
    let cas v ~expected ~desired = Atomic.compare_and_set v expected desired
  end

  module Pm = struct
    type t = { buf : Bytes.t; pm_size : int }

    let line_size = 64

    let create ~name ~size =
      if size <= 0 then invalid_arg "Native.Pm.create: non-positive size";
      Mutex.lock n.names_lock;
      let dup = Hashtbl.mem n.region_names name in
      if not dup then Hashtbl.replace n.region_names name ();
      Mutex.unlock n.names_lock;
      if dup then
        invalid_arg (Printf.sprintf "Native.Pm.create: duplicate region %S" name);
      { buf = Bytes.make size '\000'; pm_size = size }

    let size r = r.pm_size

    let check r off len what =
      if off < 0 || len < 0 || off + len > r.pm_size then
        invalid_arg (Printf.sprintf "Native.Pm.%s: range out of bounds" what)

    let store r ~off data =
      check r off (String.length data) "store";
      Bytes.blit_string data 0 r.buf off (String.length data)

    let load r ~off ~len =
      check r off len "load";
      Bytes.sub_string r.buf off len

    let store_int64 r ~off v =
      check r off 8 "store_int64";
      Bytes.set_int64_le r.buf off v

    let load_int64 r ~off =
      check r off 8 "load_int64";
      Bytes.get_int64_le r.buf off

    let flush r ~off ~len =
      check r off len "flush";
      if len > 0 then begin
        let slot = n.slots.(self_exn n) in
        let lines = ((off + len - 1) / line_size) - (off / line_size) + 1 in
        slot.pending <- slot.pending + lines
      end
  end

  let fence () =
    let slot = n.slots.(self_exn n) in
    if slot.pending > 0 then begin
      slot.pending <- 0;
      slot.pfences <- slot.pfences + 1;
      if Onll_obs.Sink.active n.sink then
        Onll_obs.Sink.emit n.sink ~proc:(self_exn n)
          (Onll_obs.Event.Fence { persistent = true });
      if n.fence_ns > 0 then spin (spin_iters n.fence_ns)
    end

  let self () = self_exn n
  let return_point () = ()
  let pause () = Domain.cpu_relax ()
  let yield () = sched_yield ()
  let persistent_fences () = persistent_fences n
  let persistent_fences_by ~proc = n.slots.(proc).pfences
end

let machine t : Machine_sig.t =
  (module Make_machine (struct
    let native = t
  end))
