(** The file-backed machine: {!Machine_sig.S} over {!Onll_nvm.File_memory}.

    Regions are files under a store directory and a persistent fence is a
    real [fsync] of every file the fence's write-backs touched. Everything
    written against {!Machine_sig.S} — the persistent log, the universal
    construction, mirroring, sessions, group commit — runs unchanged on
    real media; kill the process at any instant and a fresh machine over
    the same directory recovers from what the files actually contain.

    [Tvar] is [Atomic] and process identity is per-domain, exactly like
    the native machine ({!Native}); a worker calls {!register} before
    touching the machine. Crashes are not an API here — the process
    {e is} the volatile state, so the crash is [SIGKILL] (out-of-process
    harness) or dropping the handle after {!close} (in-process restart
    tests). The fault layer ({!Onll_faults.File_plan}) injects short
    writes, fsync [EIO] and seeded kills underneath this module. *)

type t

val create :
  ?sector_size:int ->
  ?retry_budget:int ->
  ?backoff_ns:int ->
  ?sink:Onll_obs.Sink.t ->
  dir:string ->
  max_processes:int ->
  unit ->
  t
(** Open a machine over store directory [dir] (which must exist). The
    optional knobs are {!Onll_nvm.File_memory.create}'s. *)

val machine : t -> Machine_sig.t

val memory : t -> Onll_nvm.File_memory.t
(** The underlying store — for fault installation and statistics. *)

val register : t -> int
(** Claim a process id for the calling domain (also usable by the main
    domain for single-threaded runs). @raise Failure when more than
    [max_processes] domains register. *)

val degraded : t -> bool
(** The store's sticky fail-stop flag (fsync retry budget exhausted). *)

val close : t -> unit
(** Close every backing file; the machine is unusable afterwards. *)

val sink : t -> Onll_obs.Sink.t
val set_sink : t -> Onll_obs.Sink.t -> unit
