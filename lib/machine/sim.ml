open Onll_nvm
open Onll_sched

type t = {
  mem : Memory.t;
  world : Sched.World.t;
  mutable policy : Crash_policy.t;
  max_processes : int;
}

let create ?trace_log ?line_size ?sink
    ?(crash_policy = Crash_policy.Drop_all) ~max_processes () =
  let mem = Memory.create ?line_size ?sink ~max_processes () in
  let world = Sched.World.create ?trace_log () in
  let t = { mem; world; policy = crash_policy; max_processes } in
  Sched.World.on_crash world (fun () -> Memory.crash mem ~policy:t.policy);
  t

let memory t = t.mem
let sink t = Memory.sink t.mem
let world t = t.world
let max_processes t = t.max_processes
let set_crash_policy t p = t.policy <- p
let stats t = Memory.stats t.mem
let reset_stats t = Memory.reset_stats t.mem

let run ?max_steps t strategy procs =
  if Array.length procs > t.max_processes then
    invalid_arg "Sim.run: more processes than max_processes";
  Sched.World.run ?max_steps t.world strategy procs

module Make_machine (X : sig
  val sim : t
end) : Machine_sig.S = struct
  let id = "sim"
  let max_processes = X.sim.max_processes
  let mem = X.sim.mem

  module Tvar = struct
    type 'a t = { mutable value : 'a }

    let make v = { value = v }

    let get v =
      Sched.step (Sched.Prim "tvar.get");
      v.value

    let set v x =
      Sched.step (Sched.Prim "tvar.set");
      v.value <- x

    let cas v ~expected ~desired =
      Sched.step (Sched.Prim "tvar.cas");
      if v.value == expected then begin
        v.value <- desired;
        true
      end
      else false
  end

  module Pm = struct
    type nonrec t = Memory.Region.t

    let create ~name ~size = Memory.region mem ~name ~size
    let size = Memory.Region.size

    let store r ~off data =
      Sched.step (Sched.Prim "pm.store");
      Memory.Region.store r ~proc:(Sched.current_proc ()) ~off data

    let load r ~off ~len =
      Sched.step (Sched.Prim "pm.load");
      Memory.Region.load r ~proc:(Sched.current_proc ()) ~off ~len

    let store_int64 r ~off v =
      Sched.step (Sched.Prim "pm.store64");
      Memory.Region.store_int64 r ~proc:(Sched.current_proc ()) ~off v

    let load_int64 r ~off =
      Sched.step (Sched.Prim "pm.load64");
      Memory.Region.load_int64 r ~proc:(Sched.current_proc ()) ~off

    let flush r ~off ~len =
      Sched.step (Sched.Prim "pm.flush");
      Memory.Region.flush r ~proc:(Sched.current_proc ()) ~off ~len
  end

  let fence () =
    (* The label must say whether this will be a persistent fence, so that
       schedules can break "just before the persistent fence". Pending
       write-backs are per-process, so the answer cannot change while this
       process is paused. *)
    let proc = Sched.current_proc () in
    let label =
      if Memory.pending_write_backs mem ~proc > 0 then Sched.Pfence
      else Sched.Fence
    in
    Sched.step label;
    Memory.fence mem ~proc:(Sched.current_proc ())

  let self () = Sched.current_proc ()
  let return_point () = Sched.step Sched.Return_point
  let pause () = Sched.step (Sched.Prim "pause")
  let yield () = Sched.step (Sched.Prim "yield")
  let persistent_fences () = (Memory.stats mem).Memory.Stats.persistent_fences
  let persistent_fences_by ~proc = Memory.persistent_fences_by mem ~proc
end

let machine t : Machine_sig.t =
  (module Make_machine (struct
    let sim = t
  end))
