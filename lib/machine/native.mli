(** The native machine: real OCaml 5 domains, emulated persistent fences.

    For throughput experiments the construction runs on real hardware
    parallelism: [Tvar] is [Atomic], persistent-memory regions are plain
    byte buffers, and a persistent fence is emulated by a calibrated busy
    spin of configurable duration (modelling the CPU stall while pending
    write-backs drain to NVM, §2.1). Flushes are free, exactly as in the
    cost model. Crashes are not supported on this machine — crash-recovery
    correctness is the simulator's job; the native machine exists to measure
    who wins and by how much as fence cost and core count vary.

    Worker domains must call {!register} (or be started via {!run_workers})
    before touching the machine, so that per-process state (pending flush
    counts, fence statistics, per-process logs) can be indexed densely. *)

type t

val create :
  ?fence_ns:int -> ?sink:Onll_obs.Sink.t -> max_processes:int -> unit -> t
(** [fence_ns] (default 500, roughly published NVM write-back latencies) is
    the emulated duration of a persistent fence. [fence_ns = 0] makes
    persistent fences free (counting still happens). [sink] (default
    {!Onll_obs.Sink.null}) receives [Fence] events; sinks are not
    synchronised, so under parallel domains counts are best-effort — for
    exact attribution use the simulated machine. *)

val machine : t -> Machine_sig.t

val register : t -> int
(** Claim a process id for the calling domain (also usable by the main
    domain for single-threaded runs). @raise Failure when more than
    [max_processes] domains register. *)

val run_workers : t -> (int -> 'a) list -> 'a list
(** [run_workers t bodies] spawns one domain per body, registers each,
    runs them in parallel and joins, returning results in order. *)

val fence_ns : t -> int
val set_fence_ns : t -> int -> unit
val sink : t -> Onll_obs.Sink.t
val set_sink : t -> Onll_obs.Sink.t -> unit
val persistent_fences : t -> int
val reset_stats : t -> unit

val calibrate : unit -> float
(** Spin-loop iterations per nanosecond on this host; measured once and
    cached. Exposed for reporting. *)

val monotonic_ns : unit -> int64
(** [CLOCK_MONOTONIC] in nanoseconds — immune to wall-clock (NTP) steps.
    Used by {!calibrate} and by benches that time real fsync fences. *)
