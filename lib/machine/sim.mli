(** The simulated machine: deterministic scheduler + simulated NVM.

    A {!t} bundles an {!Onll_nvm.Memory.t}, a scheduler {!Onll_sched.Sched.World.t}
    and a crash policy, and presents them as a {!Machine_sig.S} first-class
    module. Crashing the world applies the crash policy to the memory
    (registered as an [on_crash] hook) — transient [Tvar]s are simply
    abandoned with the process continuations, exactly like cache contents.

    Typical use:
    {[
      let sim = Sim.create ~max_processes:3 () in
      let module M = (val Sim.machine sim) in
      let module C = Onll_core.Onll.Make (M) (Counter) in
      let obj = C.create () in
      let outcome =
        Sim.run sim (Sched.Strategy.random ~seed:42)
          [| (fun _ -> ignore (C.update obj Counter.Increment)); ... |]
      in
      ...
    ]} *)

open Onll_nvm
open Onll_sched

type t

val create :
  ?trace_log:bool ->
  ?line_size:int ->
  ?sink:Onll_obs.Sink.t ->
  ?crash_policy:Crash_policy.t ->
  max_processes:int ->
  unit ->
  t
(** Fresh simulated machine. [crash_policy] (default [Drop_all]) governs
    what survives crashes; change it between runs with
    {!set_crash_policy}. [sink] (default {!Onll_obs.Sink.null}) is
    installed in the underlying memory system and receives its [Fence],
    [Flush] and [Crash] events. *)

val machine : t -> Machine_sig.t
(** The machine module backed by this simulator. All its operations perform
    scheduler steps when executed inside {!run}; outside a run they execute
    directly (recovery context, process 0). *)

val memory : t -> Memory.t
val sink : t -> Onll_obs.Sink.t
val world : t -> Sched.World.t
val max_processes : t -> int
val set_crash_policy : t -> Crash_policy.t -> unit

val run :
  ?max_steps:int ->
  t ->
  Sched.Strategy.t ->
  (int -> unit) array ->
  Sched.World.outcome
(** Run one crash-free era of processes on this machine (see
    {!Onll_sched.Sched.World.run}). The process array must not exceed
    [max_processes]. *)

val stats : t -> Memory.Stats.t
val reset_stats : t -> unit
