(** The machine abstraction the universal construction is written against.

    The paper's algorithm needs exactly this much from the hardware:
    transient shared variables with atomic read/write/CAS (the cache-coherent
    DRAM side), persistent memory regions with store/load/flush plus a
    process-wide fence (the NVM side), and a notion of process identity.

    Two implementations exist: {!Sim} (deterministic scheduler + simulated
    NVM, for correctness, crash testing and fence accounting) and {!Native}
    (OCaml 5 domains + [Atomic], with persistent fences emulated by a
    calibrated spin, for throughput experiments). The construction is a
    functor over this signature, so the code measured natively is the code
    verified under simulation. *)

module type S = sig
  val id : string
  (** ["sim"] or ["native"]; for reports. *)

  val max_processes : int
  (** MAX-PROCESSES in the paper: a static bound on concurrent processes.
      Process ids are [0 .. max_processes - 1]. *)

  (** Transient (volatile) shared variables. Contents are lost at a crash;
      they live in "DRAM/cache" and support CAS, which NVM does not (§3.1
      constraint 1). *)
  module Tvar : sig
    type 'a t

    val make : 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit

    val cas : 'a t -> expected:'a -> desired:'a -> bool
    (** Atomic compare-and-swap on physical equality. *)
  end

  (** Persistent memory regions. Stores are volatile until flushed {e and}
      fenced; see {!Onll_nvm.Memory} for the full semantics. *)
  module Pm : sig
    type t

    val create : name:string -> size:int -> t
    (** Allocate a region of simulated (or emulated) NVM. Region names must
        be unique within a machine instance. *)

    val size : t -> int
    val store : t -> off:int -> string -> unit
    val load : t -> off:int -> len:int -> string
    val store_int64 : t -> off:int -> int64 -> unit
    val load_int64 : t -> off:int -> int64

    val flush : t -> off:int -> len:int -> unit
    (** Asynchronous write-back ([clwb]); free of charge. *)
  end

  val fence : unit -> unit
  (** Drain the calling process's pending write-backs. Counted as a
      persistent fence iff write-backs were pending. *)

  val self : unit -> int
  (** The calling process's id. *)

  val return_point : unit -> unit
  (** Declare that the current operation is about to respond; a scheduling
      point the simulator can break on ("preempt just before the response").
      No-op on the native machine. *)

  val pause : unit -> unit
  (** Back-off hint for spin loops (lock-based baselines). *)

  val yield : unit -> unit
  (** Give other processes a chance to run before continuing — the strong
      form of {!pause}. On the simulator both are a scheduling point; on
      the native machine [pause] is a CPU relax hint (right when the peer
      is running on another core) while [yield] surrenders the OS
      timeslice (required when processes outnumber cores, where a spinning
      waiter would otherwise burn the slice the lock holder needs). The
      group-commit construction yields after announcing an update so
      concurrent submitters get to join the batch. *)

  (** {1 Accounting} *)

  val persistent_fences : unit -> int
  (** Total persistent fences executed on this machine instance. *)

  val persistent_fences_by : proc:int -> int
end

type t = (module S)
