/* Native machine: surrender the OS timeslice.

   Domain.cpu_relax is a PAUSE hint — correct when the peer runs on
   another core, catastrophic when domains outnumber cores (the spinner
   burns the whole slice the lock holder needs; a lock handoff then costs
   a preemption quantum, milliseconds instead of microseconds).
   sched_yield moves the caller to the back of the run queue, so the
   handoff costs one context switch. */

#include <caml/mlvalues.h>
#include <sched.h>

CAMLprim value onll_sched_yield(value unit)
{
  sched_yield();
  return Val_unit;
}
