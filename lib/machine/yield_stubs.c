/* Native machine: surrender the OS timeslice.

   Domain.cpu_relax is a PAUSE hint — correct when the peer runs on
   another core, catastrophic when domains outnumber cores (the spinner
   burns the whole slice the lock holder needs; a lock handoff then costs
   a preemption quantum, milliseconds instead of microseconds).
   sched_yield moves the caller to the back of the run queue, so the
   handoff costs one context switch. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <sched.h>
#include <time.h>

CAMLprim value onll_sched_yield(value unit)
{
  sched_yield();
  return Val_unit;
}

/* Monotonic nanoseconds. Fence calibration and fsync timing must not see
   wall-clock steps (NTP slews would skew the calibrated spin). */
CAMLprim value onll_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
