(** Sharded ONLL (E14): a partitioned durable object built from [S]
    independent ONLL instances.

    Durable linearizability is {e local} (it composes over disjoint
    objects), so an object partitioned by key into [S] independently
    durably-linearizable ONLL shards is itself durably linearizable for
    any history in which every operation touches exactly one shard.
    {!Make} realises that composition: the spec's partitioning interface
    ({!Onll_core.Spec.S.shard_of_update} /
    {!Onll_core.Spec.S.shard_of_read}) routes each operation to one
    shard, and each shard is a full ONLL instance — its own execution
    trace, per-process persistent logs (region names suffixed [".s<i>"]
    via {!Onll_core.Onll.Config.t.region_suffix}, so mirroring composes),
    checkpoints and fence accounting. Because an update runs on exactly
    one shard, Theorem 5.1's cost bound is preserved verbatim: {e one}
    persistent fence per update, {e zero} per shard-routed read. Global
    reads ([shard_of_read = None]) fan out over every shard and merge
    with {!Onll_core.Spec.S.merge_read}; they are still fence-free but
    read [S] traces, so they are linearizable only per-shard — each
    shard's component is consistent, and for specs whose global reads are
    monotone aggregates (sizes of disjoint key sets) that is the same
    relaxation a fuzzy size on a concurrent map gives.

    Contention, not replay, is what sharding buys: [S] traces mean [S]
    independent CAS points and [S] independent persist pipelines, so
    disjoint-key workloads scale with shards instead of serialising on
    one trace head (E14 measures exactly this).

    Operation identities are {e per shard}: {!Make.was_linearized} takes
    the update (to route the query) alongside the id. Recovery recovers
    every shard and composes the per-shard reports; the sticky
    {!Make.degraded} flag is the OR over shards. *)

(** The sharded surface, over whichever single-shard construction
    {!Make} or {!Make_over} supplied. *)
module type SHARDED = sig
  (** The underlying single-shard construction — exposed so tests and
      harnesses can reach one shard's full {!Onll_core.Onll.CONSTRUCTION}
      surface (log stats, trace introspection, targeted corruption). *)
  module Shard : Onll_core.Onll.CONSTRUCTION

  type t
  (** A sharded durable object: an array of {!Shard.t} plus the router. *)

  val make : shards:int -> Onll_core.Onll.Config.t -> t
  (** [make ~shards cfg] builds [shards] independent ONLL instances, each
      configured as [cfg] but with [".s<i>"] appended to
      [cfg.region_suffix] — every persistent region name is
      shard-qualified, so the durable state of different shards can never
      collide and is self-describing on media. [cfg.log_capacity] is {e
      per shard, per process}. The shared [cfg.sink] receives every
      shard's events plus this layer's {!Onll_obs.Event.Route} events;
      fence attribution from all shards aggregates in the one registry,
      which is what E1 asserts against.
      @raise Invalid_argument if [shards < 1]. *)

  val create : ?shards:int -> ?log_capacity:int -> ?local_views:bool ->
    unit -> t
  (** [make] with {!Onll_core.Onll.Config.default} (4 shards). *)

  val shards : t -> int
  val sink : t -> Onll_obs.Sink.t

  val shard : t -> int -> Shard.t
  (** Direct access to shard [i], for tests and introspection. *)

  val shard_of_update : t -> Shard.update_op -> int
  (** The router: which shard [op] lands on. Pure — depends only on the
      operation and the shard count, so it answers identically across
      crashes and processes. *)

  val participants : t -> Shard.update_op list -> int list
  (** The distinct shards an operation list touches, ascending — the
      participant set a cross-shard transaction coordinator
      ({!Onll_txn}, E19) plans against. Pure, like {!shard_of_update}. *)

  (** {1 Operations} *)

  val update : t -> Shard.update_op -> Shard.value
  (** Route by {!Onll_core.Spec.S.shard_of_update} and run the update on
      that single shard: one persistent fence, exactly as unsharded. *)

  val update_with_id : t -> Shard.update_op -> Onll_core.Onll.op_id * Shard.value
  (** Like {!update}, also returning the identity — which is unique {e
      per shard} (the pair [(shard_of_update t op, id)] is globally
      unique). *)

  val update_detectable : t -> seq:int -> Shard.update_op -> Shard.value
  (** Client-chosen sequence number; freshness is enforced per shard, so
      per-process monotone seqs are valid whatever shard each lands on. *)

  val read : t -> Shard.read_op -> Shard.value
  (** Shard-routed reads ([shard_of_read = Some s]) run on shard [s];
      global reads ([None]) read every shard and merge with
      {!Onll_core.Spec.S.merge_read}. Either way: no fences, no NVM. *)

  (** {1 Crash recovery} *)

  val recover : t -> unit
  (** Strict recovery of every shard.
      @raise Onll_core.Onll.Recovery_corrupt on detected loss in any. *)

  val recover_report : t -> Onll_core.Onll.Recovery_report.t
  (** Hardened recovery of every shard, composed into one report:
      [recovered_ops], [decode_failures] and [base_idx] sum; [gap_indices],
      [dropped], [disagreements] and [salvage] concatenate in shard order
      (indices are per-shard execution indices). [detected_loss] on the
      composition is the OR of the per-shard answers. *)

  val recover_reports : t -> Onll_core.Onll.Recovery_report.t list
  (** The same recovery, reported per shard (in shard order). *)

  val recover_unhardened : t -> unit
  (** The deliberately broken calibration baseline, per shard (E12). *)

  val scrub : t -> Onll_plog.Plog.scrub_report
  (** One cooperative scrub step walks {e all} shards' logs; reports sum. *)

  val degraded : t -> bool
  (** OR of the shards' sticky degraded flags. *)

  val was_linearized : t -> Shard.update_op -> Onll_core.Onll.op_id -> bool
  (** Detectable execution, routed: asks [op]'s shard whether [id] took
      effect there. Identities are per-shard, so the operation (or at
      least its routing key) is part of the question. *)

  val recovered_ops : t -> (int * Onll_core.Onll.op_id * int) list
  (** Recovery's re-inserted operations as [(shard, id, exec_idx)],
      shard-major, oldest first within a shard. *)

  (** {1 Reclamation and introspection} *)

  val checkpoint : t -> int
  (** Checkpoint every shard from the calling process; returns the sum of
      summarised execution indices. *)

  val compact : t -> unit
  (** Checkpoint every shard {e and} prune its transient trace below the
      summarised index, bounding both durable log space and the replay
      distance of subsequent view-less computes. The per-shard trace a
      compute replays is [1/S] of the whole history between compactions —
      the locality benefit E14 measures alongside contention. *)

  val snapshot : t -> Onll_core.Onll.Snapshot.t
  (** Composed snapshot: [logs] concatenate in shard order,
      [latest_available_idx] sums, [max_fuzzy_window] is the max over
      shards (each shard's window obeys Prop. 5.2 independently) and
      [degraded] is the OR. *)
end

module Make_over
    (M : Onll_machine.Machine_sig.S)
    (S : Onll_core.Spec.S)
    (C : Onll_core.Onll.CONSTRUCTION
           with type state = S.state
            and type update_op = S.update_op
            and type read_op = S.read_op
            and type value = S.value) : SHARDED with module Shard = C
(** Shard any construction that speaks the standard surface — in
    particular [Make_over (M) (S) (Onll_batched.Make (M) (S))] is the
    sharded group-commit object (E16 composes it this way): each shard
    keeps its own leader lock and shared log, so disjoint-key traffic
    scales with shards {e and} amortises fences within each shard. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) :
  SHARDED
    with type Shard.state = S.state
     and type Shard.update_op = S.update_op
     and type Shard.read_op = S.read_op
     and type Shard.value = S.value
(** {!Make_over} applied to the paper's construction
    ({!Onll_core.Onll.Make}). *)
