(** Sharded ONLL (see onll_sharded.mli). *)

(* Duplicated (condensed) from onll_sharded.mli, which carries the
   documentation. *)
module type SHARDED = sig
  module Shard : Onll_core.Onll.CONSTRUCTION

  type t

  val make : shards:int -> Onll_core.Onll.Config.t -> t

  val create :
    ?shards:int -> ?log_capacity:int -> ?local_views:bool -> unit -> t

  val shards : t -> int
  val sink : t -> Onll_obs.Sink.t
  val shard : t -> int -> Shard.t
  val shard_of_update : t -> Shard.update_op -> int
  val participants : t -> Shard.update_op list -> int list
  val update : t -> Shard.update_op -> Shard.value
  val update_with_id : t -> Shard.update_op -> Onll_core.Onll.op_id * Shard.value
  val update_detectable : t -> seq:int -> Shard.update_op -> Shard.value
  val read : t -> Shard.read_op -> Shard.value
  val recover : t -> unit
  val recover_report : t -> Onll_core.Onll.Recovery_report.t
  val recover_reports : t -> Onll_core.Onll.Recovery_report.t list
  val recover_unhardened : t -> unit
  val scrub : t -> Onll_plog.Plog.scrub_report
  val degraded : t -> bool
  val was_linearized : t -> Shard.update_op -> Onll_core.Onll.op_id -> bool
  val recovered_ops : t -> (int * Onll_core.Onll.op_id * int) list
  val checkpoint : t -> int
  val compact : t -> unit
  val snapshot : t -> Onll_core.Onll.Snapshot.t
end

module Make_over
    (M : Onll_machine.Machine_sig.S)
    (S : Onll_core.Spec.S)
    (C : Onll_core.Onll.CONSTRUCTION
           with type state = S.state
            and type update_op = S.update_op
            and type read_op = S.read_op
            and type value = S.value) =
struct
  module Shard = C
  module Report = Onll_core.Onll.Recovery_report

  type t = {
    insts : Shard.t array;
    n : int;
    t_sink : Onll_obs.Sink.t;
    (* per-shard routed-op counters ["shard.<i>.ops"], resolved once *)
    c_shard_ops : Onll_obs.Metrics.counter array;
  }

  let make ~shards cfg =
    if shards < 1 then
      invalid_arg (Printf.sprintf "Onll_sharded.make: shards = %d" shards);
    let sink = cfg.Onll_core.Onll.Config.sink in
    let registry = Onll_obs.Sink.registry sink in
    {
      insts =
        Array.init shards (fun i ->
            Shard.make
              {
                cfg with
                Onll_core.Onll.Config.region_suffix =
                  Printf.sprintf "%s.s%d"
                    cfg.Onll_core.Onll.Config.region_suffix i;
              });
      n = shards;
      t_sink = sink;
      c_shard_ops =
        Array.init shards (fun i ->
            Onll_obs.Metrics.counter registry
              (Printf.sprintf "shard.%d.ops" i));
    }

  let create ?(shards = 4) ?log_capacity ?local_views () =
    let d = Onll_core.Onll.Config.default in
    make ~shards
      {
        d with
        Onll_core.Onll.Config.log_capacity =
          Option.value log_capacity
            ~default:d.Onll_core.Onll.Config.log_capacity;
        local_views =
          Option.value local_views
            ~default:d.Onll_core.Onll.Config.local_views;
      }

  let shards t = t.n
  let sink t = t.t_sink

  let shard t i =
    if i < 0 || i >= t.n then
      invalid_arg (Printf.sprintf "Onll_sharded.shard: %d (of %d)" i t.n);
    t.insts.(i)

  let shard_of_update t op = S.shard_of_update ~shards:t.n op

  (* The multi-shard routing question a transaction coordinator (E19)
     asks before anything runs: which shards does this operation list
     touch? Pure, like the router it is built on. *)
  let participants t ops =
    List.sort_uniq compare (List.map (shard_of_update t) ops)

  let route_update t op =
    let s = shard_of_update t op in
    Onll_obs.Metrics.incr t.c_shard_ops.(s);
    Onll_obs.Sink.emit t.t_sink ~proc:(M.self ())
      (Onll_obs.Event.Route { shard = s; global = false });
    s

  let update t op = Shard.update t.insts.(route_update t op) op
  let update_with_id t op = Shard.update_with_id t.insts.(route_update t op) op

  let update_detectable t ~seq op =
    Shard.update_detectable t.insts.(route_update t op) ~seq op

  let read t op =
    match S.shard_of_read ~shards:t.n op with
    | Some s ->
        Onll_obs.Metrics.incr t.c_shard_ops.(s);
        Onll_obs.Sink.emit t.t_sink ~proc:(M.self ())
          (Onll_obs.Event.Route { shard = s; global = false });
        Shard.read t.insts.(s) op
    | None ->
        Onll_obs.Sink.emit t.t_sink ~proc:(M.self ())
          (Onll_obs.Event.Route { shard = t.n; global = true });
        S.merge_read op
          (Array.to_list (Array.map (fun c -> Shard.read c op) t.insts))

  let recover t = Array.iter Shard.recover t.insts
  let recover_reports t = Array.to_list (Array.map Shard.recover_report t.insts)

  let recover_report t =
    let rs = recover_reports t in
    {
      Report.recovered_ops =
        List.fold_left (fun a r -> a + r.Report.recovered_ops) 0 rs;
      base_idx = List.fold_left (fun a r -> a + r.Report.base_idx) 0 rs;
      gap_indices = List.concat_map (fun r -> r.Report.gap_indices) rs;
      dropped = List.concat_map (fun r -> r.Report.dropped) rs;
      disagreements = List.concat_map (fun r -> r.Report.disagreements) rs;
      decode_failures =
        List.fold_left (fun a r -> a + r.Report.decode_failures) 0 rs;
      salvage = List.concat_map (fun r -> r.Report.salvage) rs;
      lost_acked = List.concat_map (fun r -> r.Report.lost_acked) rs;
    }

  let recover_unhardened t = Array.iter Shard.recover_unhardened t.insts

  let scrub t =
    Array.fold_left
      (fun acc c -> Onll_plog.Plog.add_scrub acc (Shard.scrub c))
      Onll_plog.Plog.clean_scrub t.insts

  let degraded t = Array.exists Shard.degraded t.insts
  let was_linearized t op id = Shard.was_linearized t.insts.(shard_of_update t op) id

  let recovered_ops t =
    List.concat
      (List.mapi
         (fun s c -> List.map (fun (id, idx) -> (s, id, idx)) (Shard.recovered_ops c))
         (Array.to_list t.insts))

  let checkpoint t =
    Array.fold_left (fun acc c -> acc + Shard.checkpoint c) 0 t.insts

  let compact t =
    Array.iter
      (fun c ->
        let upto = Shard.checkpoint c in
        if upto > 0 then
          (* A concurrent compact may have pruned deeper between our
             checkpoint and here, unlinking the node at [upto] — its goal
             is ours, so a lost race is success, not an error. *)
          try Shard.prune c ~below:upto with Invalid_argument _ -> ())
      t.insts

  let snapshot t =
    let snaps = Array.to_list (Array.map Shard.snapshot t.insts) in
    {
      Onll_core.Onll.Snapshot.latest_available_idx =
        List.fold_left
          (fun a s -> a + s.Onll_core.Onll.Snapshot.latest_available_idx)
          0 snaps;
      max_fuzzy_window =
        List.fold_left
          (fun a s -> max a s.Onll_core.Onll.Snapshot.max_fuzzy_window)
          0 snaps;
      degraded =
        List.exists (fun s -> s.Onll_core.Onll.Snapshot.degraded) snaps;
      logs = List.concat_map (fun s -> s.Onll_core.Onll.Snapshot.logs) snaps;
    }
end

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) =
  Make_over (M) (S) (Onll_core.Onll.Make (M) (S))
