(** What happens to volatile cache contents at a full-system crash.

    The NVM model (paper §2.1) guarantees only that writes separated by a
    persistent fence reach NVM in order. Everything else — dirty lines that
    were never flushed, and lines whose flush was issued but not yet fenced —
    may or may not have been written back by the time power is lost (caches
    evict lines spontaneously). A crash policy resolves this nondeterminism,
    letting tests explore both adversarial extremes and randomized middles. *)

type t =
  | Drop_all
      (** Nothing that was not covered by a persistent fence survives: the
          adversarially *minimal* durable state. *)
  | Persist_all
      (** Every dirty line is written back just before the crash: the
          adversarially *maximal* durable state (models lucky evictions). *)
  | Random of int
      (** Each dirty line and each pending (flushed-but-unfenced) write-back
          independently survives with probability 1/2, using the given seed.

          {b Seed contract.} The surviving set is a pure function of the
          seed and the memory system's state at the crash: a fresh SplitMix
          stream is created from the seed at each crash, and one coin is
          drawn per candidate in a fixed order — every process's pending
          write-backs in issue order (processes ascending), then every
          region's dirty lines in ascending line order. Replaying the same
          program to the same crash point with the same seed therefore
          reproduces the same durable image, byte for byte (pinned by
          [test_nvm]'s determinism test). Distinct crashes in one run reuse
          the same seed but generally see different candidate sets; vary the
          seed to vary a specific crash's outcome. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val all_deterministic : t list
(** [Drop_all; Persist_all] — the two extremes, for exhaustive tests. *)
