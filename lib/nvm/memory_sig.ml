(** The backend-neutral persistent-memory surface.

    Two memory systems implement the §2.1 cost model: the deterministic
    simulator ({!Memory}, bytes in RAM with an explicit dirty-line overlay)
    and the file-backed store ({!File_memory}, one file per region with
    [fsync] as the persistent fence). Code that must run identically against
    both — the fault-injection parity tests, backend-agnostic drivers —
    works through this first-class-module signature instead of either
    concrete [t]. {!Memory.instance} and {!File_memory.instance} produce
    one.

    The operations mirror the shared semantic core: stores are volatile
    until flushed {e and} fenced; [flush] is asynchronous and free; a fence
    with pending write-backs is a persistent fence. Anything
    backend-specific (crash policies, sector sizes, fsync retry budgets)
    stays on the concrete modules. *)

module type S = sig
  val id : string
  (** ["sim"] or ["file"]; for reports. *)

  val max_processes : int

  type region

  val region : name:string -> size:int -> region
  (** Allocate (or, on the file backend, reopen) a region. *)

  val find_region : string -> region option
  val region_names : unit -> string list

  val name : region -> string
  val size : region -> int
  val store : region -> proc:int -> off:int -> string -> unit
  val load : region -> proc:int -> off:int -> len:int -> string
  val flush : region -> proc:int -> off:int -> len:int -> unit

  val durable_snapshot : region -> string
  (** The durable bytes only — what survives losing all volatile state. *)

  val fence : proc:int -> unit
  val pending_write_backs : proc:int -> int
  val persistent_fences : unit -> int
end

type t = (module S)
