(** File-backed persistent memory: regions are files, fences are [fsync].

    A {!t} is a store directory holding one file per region. The §2.1 cost
    model is preserved exactly:

    {ul
    {- [store] writes a volatile in-process buffer and marks the touched
       sectors dirty; nothing reaches the file.}
    {- [flush] snapshots the dirty sectors in a range into the calling
       process's pending write-back set — asynchronous, no I/O, free.}
    {- [fence] with pending write-backs physically [pwrite]s the pending
       sectors and [fsync]s every touched file; it is counted as a
       {e persistent fence}. A fence with no pending write-backs does no
       I/O and is an ordinary fence.}}

    Deferring the [pwrite]s to fence time (rather than issuing them at
    flush) is what makes [SIGKILL] as adversarial as power loss: data that
    was never covered by a fence exists only in this process's heap, so
    killing the process at any instant durably loses exactly the unfenced
    suffix — the nondeterminism the paper's crash model describes. Sectors
    already written when a mid-fence kill lands may or may not be visible
    after restart, which is the genuine torn-fence case the recovery path
    (salvage + replay) must absorb.

    {b fsync failure semantics (fsyncgate).} After a failed [fsync] the
    kernel may have dropped the very dirty pages the fence was supposed to
    persist, so retrying the [fsync] alone can report success while the
    data is gone. This store therefore keeps the pending set intact across
    a failed attempt and {e re-writes every sector} before re-fsyncing,
    up to [retry_budget] attempts with exponential backoff. If the budget
    exhausts, the store trips a {e sticky} degraded flag and every
    subsequent fence raises {!Degraded}: fail-stop, so no caller can
    acknowledge an update whose fence never succeeded. Short writes and
    [ENOSPC] follow the same retry-then-degrade path.

    Like the simulator, the store is driven by at most [max_processes]
    logical processes; file I/O is serialised by an internal lock so the
    native machine's domains can share it. *)

type t

exception Degraded of string
(** Raised by [fence] (and every later fence — the flag is sticky) once
    the write-back retry budget is exhausted. The data of the failed fence
    is {e not} durable; callers must fail the operation, never ack it. *)

type fsync_verdict = [ `Ok | `Eio of bool ]
(** Fault-hook verdict for an fsync: [`Eio drop_pages] fails the fsync
    with [EIO]; when [drop_pages] is true the store first reverts this
    attempt's writes from pre-images, modelling a kernel that discarded
    the dirty pages (so only a full re-write can still land the data). *)

type hooks = {
  h_op : Memory.op_kind -> unit;
      (** Start of every durable-memory operation. May raise
          {!Memory.Injected_crash}. *)
  h_flush : proc:int -> region:string -> unit;
      (** Before any sector is queued. May raise {!Memory.Transient_fault}
          to fail the whole instruction, exactly like the simulator. *)
  h_fence : proc:int -> pending:int -> unit;
      (** Before the write-back begins. May raise
          {!Memory.Transient_fault} (pending set left intact). *)
  h_write : region:string -> sector:int -> len:int -> int;
      (** Before each sector [pwrite]; returns how many bytes actually
          land ([< len] models a short/torn write, failing the attempt).
          May raise [Unix_error (EIO|ENOSPC, _, _)] or kill the process. *)
  h_fsync : region:string -> fsync_verdict;
      (** Before each real [fsync]. *)
}

val set_hooks : t -> hooks option -> unit
(** Install (or remove) fault hooks; installed by [Onll_faults.File]. *)

val create :
  ?sector_size:int ->
  ?retry_budget:int ->
  ?backoff_ns:int ->
  ?sink:Onll_obs.Sink.t ->
  dir:string ->
  max_processes:int ->
  unit ->
  t
(** [create ~dir ~max_processes ()] opens a store rooted at existing
    directory [dir]. [sector_size] (default 512) is the write-back
    granularity; [retry_budget] (default 8) bounds fence write-back
    attempts; [backoff_ns] (default 1 ms) is the base of the exponential
    backoff between attempts (0 for deterministic tests).
    @raise Invalid_argument if [dir] is not a directory or a knob is out
    of range. *)

val sink : t -> Onll_obs.Sink.t
val set_sink : t -> Onll_obs.Sink.t -> unit
val sector_size : t -> int
val max_processes : t -> int
val dir : t -> string

val degraded : t -> bool
(** The sticky fail-stop flag (see module doc). *)

val degraded_reason : t -> string option

(** {1 Regions} *)

module Region : sig
  type t

  val name : t -> string
  val size : t -> int
  val path : t -> string  (** the backing file *)

  val store : t -> proc:int -> off:int -> string -> unit
  val load : t -> proc:int -> off:int -> len:int -> string
  val store_int64 : t -> proc:int -> off:int -> int64 -> unit
  val load_int64 : t -> proc:int -> off:int -> int64
  val flush : t -> proc:int -> off:int -> len:int -> unit

  val durable_snapshot : t -> string
  (** The backing file's bytes (a [pread], bypassing the buffer) — what a
      process kill at this instant would preserve, modulo sectors the OS
      has not yet written back. *)

  val dirty_sectors : t -> int list
  (** Sectors stored since their last flush, sorted. For tests. *)
end

val region : t -> name:string -> size:int -> Region.t
(** Allocate or {e reopen} a region: if [dir/name] already exists with the
    (sector-rounded) size, its contents become the region's initial durable
    bytes — this is how a restarted process finds its logs. A fresh region
    is created zero-filled.
    @raise Invalid_argument on size mismatch, duplicate name within this
    store instance, non-positive size, or a name that is not a plain file
    name. *)

val find_region : t -> string -> Region.t option
val region_names : t -> string list

(** {1 Fences} *)

val fence : t -> proc:int -> unit
(** Drain [proc]'s pending write-backs to the backing files (see module
    doc). @raise Degraded once the store is degraded. *)

val pending_write_backs : t -> proc:int -> int

val close : t -> unit
(** Close every backing file. The handle is unusable afterwards; reopen
    the same directory with a fresh {!create} to model a process restart.
    Idempotent. *)

(** {1 Statistics} *)

module Stats : sig
  type t = {
    loads : int;
    stores : int;
    flushes : int;  (** sector write-backs queued *)
    fences : int;
    persistent_fences : int;  (** fences that drained pending sectors *)
    fsyncs : int;  (** successful [fsync] calls *)
    fsync_retries : int;  (** failed write-back attempts that were retried *)
    short_writes : int;  (** injected short writes observed *)
  }

  val zero : t
  val sub : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

val stats : t -> Stats.t
val persistent_fences_by : t -> proc:int -> int
val reset_stats : t -> unit

val instance : t -> Memory_sig.t
(** This store as a backend-neutral {!Memory_sig.S} instance. *)
