(** Simulated byte-addressable non-volatile memory.

    A {!t} models one machine's memory system: a durable NVM backing store
    per region, a single coherent volatile cache shared by all processes
    (a line overlay holding dirty contents), and per-process sets of pending
    asynchronous write-backs.

    The semantics follow paper §2.1 and Cohen et al. [12]:
    {ul
    {- [store] dirties cache lines; it never reaches NVM by itself.}
    {- [flush] ([clwb]/[clflushopt]) snapshots the current contents of the
       dirty lines in a range into the calling process's pending write-back
       set. Flushes are asynchronous and cost nothing.}
    {- [fence] drains the calling process's pending write-backs into NVM.
       A fence with a non-empty pending set is a {e persistent fence} — the
       expensive instruction this whole paper is about — and is counted as
       such. A fence with no pending write-backs is an ordinary fence and is
       counted separately.}
    {- [crash] loses all volatile state. Write-backs not covered by a fence
       may or may not have reached NVM; a {!Crash_policy.t} resolves that
       nondeterminism. After a crash, loads see exactly the durable bytes.}}

    The simulator is single-threaded by design: it is driven either directly
    or by the deterministic scheduler, never by parallel domains. *)

type t

exception Transient_fault of string
(** Raised by an installed fault hook to make a [flush] or [fence] fail
    {e transiently}: the instruction had no effect (no lines queued, no
    write-backs drained) and retrying it may succeed. Consumers that care
    about durability (the persistent log) retry with bounded backoff. *)

exception Injected_crash
(** Raised by an installed fault hook to cut execution mid-operation —
    the fault layer's way of scheduling a nested crash at an exact
    durable-memory operation (e.g. "the 17th memory access of recovery").
    The raiser has not modified anything; the catcher is expected to call
    {!crash} and restart whatever it was doing. *)

type op_kind = Op_load | Op_store | Op_flush | Op_fence

type hooks = {
  h_op : op_kind -> unit;
      (** Called at the start of every durable-memory operation (loads,
          stores, flushes, fences). May raise {!Injected_crash}. *)
  h_flush : proc:int -> region:string -> unit;
      (** Called by [flush] before any line is queued. May raise
          {!Transient_fault} to fail the whole instruction. *)
  h_fence : proc:int -> pending:int -> unit;
      (** Called by [fence] before draining; [pending] is the size of the
          caller's pending set. May raise {!Transient_fault} (the pending
          set is left intact). *)
  h_crash : unit -> unit;
      (** Called at the end of {!crash}, after crash-policy resolution —
          the hook may corrupt durable bytes via {!Region.corrupt} to
          model bit rot and torn media writes. *)
}

val set_hooks : t -> hooks option -> unit
(** Install (or remove, with [None]) the fault hooks. Installed by
    [Onll_faults]; [None] by default, in which case every hook point is a
    single match on an immediate. *)

val create :
  ?line_size:int -> ?sink:Onll_obs.Sink.t -> max_processes:int -> unit -> t
(** [create ~max_processes ()] is a fresh memory system. [line_size]
    (default 64) is the cache-line granularity of flushes, write-backs and
    crash-time line survival. [sink] (default {!Onll_obs.Sink.null})
    receives structured [Fence], [Flush] and [Crash] events; with the null
    sink every emission point is a single boolean test.
    @raise Invalid_argument if [line_size < 1] or [max_processes < 1]. *)

val sink : t -> Onll_obs.Sink.t
val set_sink : t -> Onll_obs.Sink.t -> unit
(** Replace the event sink (e.g. to start observing mid-experiment). *)

val line_size : t -> int
val max_processes : t -> int

(** {1 Regions} *)

module Region : sig
  type memory := t

  type t
  (** A named, fixed-size span of NVM with its own address space. *)

  val name : t -> string
  val size : t -> int
  val memory : t -> memory

  val store : t -> proc:int -> off:int -> string -> unit
  (** Write bytes at [off] (volatile until flushed and fenced). *)

  val load : t -> proc:int -> off:int -> len:int -> string
  (** Read through the cache: dirty lines shadow durable contents. *)

  val store_int64 : t -> proc:int -> off:int -> int64 -> unit
  val load_int64 : t -> proc:int -> off:int -> int64

  val flush : t -> proc:int -> off:int -> len:int -> unit
  (** Issue asynchronous write-backs for every line intersecting
      [off, off+len) that is dirty. *)

  val durable_snapshot : t -> string
  (** The NVM contents, ignoring the cache — what a crash with
      {!Crash_policy.Drop_all} would preserve. For tests and debugging. *)

  val dirty_lines : t -> int list
  (** Line numbers currently dirty in the cache, sorted. For tests. *)

  val corrupt : t -> off:int -> len:int -> f:(int -> char -> char) -> unit
  (** [corrupt r ~off ~len ~f] transforms the {e durable} bytes
      [off, off+len) in place: byte [off+i] becomes [f i old]. This models
      media damage — it bypasses the cache, statistics and hooks entirely
      and is meant for fault injection and tests, never for programs.
      @raise Invalid_argument if the range is out of bounds. *)
end

val region : t -> name:string -> size:int -> Region.t
(** Allocate a region. @raise Invalid_argument on non-positive size or
    duplicate name. *)

val find_region : t -> string -> Region.t option

val region_names : t -> string list
(** All allocated regions, sorted by name. *)

(** {1 Durable images}

    Snapshot the {e durable} contents (NVM only — never the cache) of every
    region to a host file, and restore such a snapshot into a memory system
    whose regions have been re-created with the same names and sizes. This
    gives simulated NVM real persistence across OS processes: write in one
    process, kill it, restore and recover in another (see
    [examples/disk_persistence.ml]). *)

val save_image : t -> path:string -> unit
(** Write all regions' durable bytes to [path] (CRC-protected).
    Crash-atomic: the image is written to [path ^ ".tmp"], fsynced and
    renamed into place, so a crash mid-save leaves the previous image
    (or no image) at [path] — never a torn one. *)

val load_image : t -> path:string -> unit
(** Restore a snapshot into this memory system's NVM.
    @raise Invalid_argument if the file is corrupt, or mentions a region
    this system does not have (regions must be re-created — same names,
    same sizes — before loading). Extra local regions are left zeroed. *)

(** {1 Fences and crashes} *)

val fence : t -> proc:int -> unit
(** Drain [proc]'s pending write-backs (see module doc). *)

val pending_write_backs : t -> proc:int -> int
(** Number of line write-backs issued by [proc] not yet covered by a
    fence. *)

val crash : t -> policy:Crash_policy.t -> unit
(** Lose all volatile state as described in the module doc. Statistics
    survive (they describe the whole experiment, not one epoch); the crash
    count is incremented. *)

(** {1 Statistics} *)

module Stats : sig
  type t = {
    loads : int;
    stores : int;
    flushes : int;  (** line write-backs issued *)
    fences : int;  (** all fence instructions *)
    persistent_fences : int;  (** fences that had pending write-backs *)
    crashes : int;
  }

  val zero : t
  val sub : t -> t -> t
  (** [sub a b] is the component-wise difference — statistics of the window
      between two snapshots. *)

  val pp : Format.formatter -> t -> unit
end

val stats : t -> Stats.t
val persistent_fences_by : t -> proc:int -> int
(** Persistent fences executed by one process since creation or the last
    [reset_stats]. *)

val reset_stats : t -> unit

val instance : t -> Memory_sig.t
(** This memory system as a backend-neutral {!Memory_sig.S} instance —
    the surface shared with {!File_memory} for backend-agnostic drivers
    (e.g. the fault-scoping parity tests). *)
