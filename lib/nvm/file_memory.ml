(* File-backed persistent memory. See file_memory.mli for the model. *)

module Stats = struct
  type t = {
    loads : int;
    stores : int;
    flushes : int;
    fences : int;
    persistent_fences : int;
    fsyncs : int;
    fsync_retries : int;
    short_writes : int;
  }

  let zero =
    { loads = 0; stores = 0; flushes = 0; fences = 0; persistent_fences = 0;
      fsyncs = 0; fsync_retries = 0; short_writes = 0 }

  let sub a b =
    {
      loads = a.loads - b.loads;
      stores = a.stores - b.stores;
      flushes = a.flushes - b.flushes;
      fences = a.fences - b.fences;
      persistent_fences = a.persistent_fences - b.persistent_fences;
      fsyncs = a.fsyncs - b.fsyncs;
      fsync_retries = a.fsync_retries - b.fsync_retries;
      short_writes = a.short_writes - b.short_writes;
    }

  let pp ppf t =
    Format.fprintf ppf
      "loads=%d stores=%d flushes=%d fences=%d persistent_fences=%d \
       fsyncs=%d fsync_retries=%d short_writes=%d"
      t.loads t.stores t.flushes t.fences t.persistent_fences t.fsyncs
      t.fsync_retries t.short_writes
end

exception Degraded of string

type fsync_verdict = [ `Ok | `Eio of bool ]

type region = {
  r_name : string;
  r_size : int;  (* requested size; loads/stores bounded by this *)
  r_file_size : int;  (* sector-rounded on-disk size *)
  fd : Unix.file_descr;
  path : string;
  buf : Bytes.t;  (* volatile image: the "cache" side of every sector *)
  dirty : (int, unit) Hashtbl.t;  (* sector indices stored since last flush *)
  r_mem : t;
}

and pending = { p_region : region; p_sector : int; p_data : Bytes.t }

and hooks = {
  h_op : Memory.op_kind -> unit;
  h_flush : proc:int -> region:string -> unit;
  h_fence : proc:int -> pending:int -> unit;
  h_write : region:string -> sector:int -> len:int -> int;
      (* permitted byte count: < len models a short write *)
  h_fsync : region:string -> fsync_verdict;
}

and t = {
  sector_size : int;
  max_processes : int;
  dir : string;
  regions : (string, region) Hashtbl.t;
  pending : pending list ref array;  (* per process, newest first *)
  io_lock : Mutex.t;
  retry_budget : int;
  backoff_ns : int;
  mutable sink : Onll_obs.Sink.t;
  mutable hooks : hooks option;
  mutable degraded_reason : string option;
  mutable closed : bool;
  mutable s_loads : int;
  mutable s_stores : int;
  mutable s_flushes : int;
  mutable s_fences : int;
  mutable s_persistent_fences : int;
  mutable s_fsyncs : int;
  mutable s_fsync_retries : int;
  mutable s_short_writes : int;
  pf_by_proc : int array;
}

exception Short_write of string

let op_hook t kind =
  match t.hooks with None -> () | Some h -> h.h_op kind

let create ?(sector_size = 512) ?(retry_budget = 8) ?(backoff_ns = 1_000_000)
    ?(sink = Onll_obs.Sink.null) ~dir ~max_processes () =
  if sector_size < 1 then invalid_arg "File_memory.create: sector_size < 1";
  if max_processes < 1 then
    invalid_arg "File_memory.create: max_processes < 1";
  if retry_budget < 1 then invalid_arg "File_memory.create: retry_budget < 1";
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    invalid_arg
      (Printf.sprintf "File_memory.create: %S is not a directory" dir);
  {
    sector_size;
    max_processes;
    dir;
    regions = Hashtbl.create 8;
    pending = Array.init max_processes (fun _ -> ref []);
    io_lock = Mutex.create ();
    retry_budget;
    backoff_ns;
    sink;
    hooks = None;
    degraded_reason = None;
    closed = false;
    s_loads = 0;
    s_stores = 0;
    s_flushes = 0;
    s_fences = 0;
    s_persistent_fences = 0;
    s_fsyncs = 0;
    s_fsync_retries = 0;
    s_short_writes = 0;
    pf_by_proc = Array.make max_processes 0;
  }

let sink t = t.sink
let set_sink t s = t.sink <- s
let set_hooks t h = t.hooks <- h
let sector_size t = t.sector_size
let max_processes t = t.max_processes
let dir t = t.dir
let degraded t = t.degraded_reason <> None
let degraded_reason t = t.degraded_reason

let check_proc t proc =
  if proc < 0 || proc >= t.max_processes then
    invalid_arg (Printf.sprintf "File_memory: process id %d out of range" proc)

let check_open t what =
  if t.closed then
    invalid_arg (Printf.sprintf "File_memory.%s: store is closed" what)

(* pwrite/pread via lseek under the store's io lock: the OCaml stdlib has
   neither, and region fds are shared by all processes of the machine. *)
let pwrite t fd ~off bytes ~pos ~len =
  Mutex.lock t.io_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.io_lock)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let written = ref 0 in
      while !written < len do
        let n = Unix.write fd bytes (pos + !written) (len - !written) in
        if n = 0 then raise (Unix.Unix_error (Unix.EIO, "write", ""));
        written := !written + n
      done)

let pread t fd ~off ~len =
  Mutex.lock t.io_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.io_lock)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let out = Bytes.create len in
      let read = ref 0 in
      let eof = ref false in
      while (not !eof) && !read < len do
        let n = Unix.read fd out !read (len - !read) in
        if n = 0 then eof := true else read := !read + n
      done;
      (* short files read as zeros, like a fresh ftruncate *)
      out)

let valid_region_name name =
  String.length name > 0
  && name <> "." && name <> ".."
  && not (String.exists (fun c -> c = '/' || c = '\000') name)

let region t ~name ~size =
  check_open t "region";
  if size <= 0 then invalid_arg "File_memory.region: non-positive size";
  if not (valid_region_name name) then
    invalid_arg
      (Printf.sprintf "File_memory.region: %S is not a valid file name" name);
  if Hashtbl.mem t.regions name then
    invalid_arg
      (Printf.sprintf "File_memory.region: duplicate region %S" name);
  let sectors = (size + t.sector_size - 1) / t.sector_size in
  let file_size = sectors * t.sector_size in
  let path = Filename.concat t.dir name in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let r =
    try
      let st = Unix.fstat fd in
      if st.Unix.st_size = 0 then Unix.ftruncate fd file_size
      else if st.Unix.st_size <> file_size then
        invalid_arg
          (Printf.sprintf
             "File_memory.region: %S exists with size %d, expected %d" name
             st.Unix.st_size file_size);
      let buf = pread t fd ~off:0 ~len:file_size in
      {
        r_name = name;
        r_size = size;
        r_file_size = file_size;
        fd;
        path;
        buf;
        dirty = Hashtbl.create 64;
        r_mem = t;
      }
    with e ->
      Unix.close fd;
      raise e
  in
  Hashtbl.replace t.regions name r;
  r

let find_region t name = Hashtbl.find_opt t.regions name

let region_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.regions []
  |> List.sort compare

module Region = struct
  type nonrec t = region

  let name r = r.r_name
  let size r = r.r_size
  let path r = r.path

  let check_range r off len what =
    if off < 0 || len < 0 || off + len > r.r_size then
      invalid_arg
        (Printf.sprintf "File_memory.%s: [%d, %d) out of bounds for %S" what
           off (off + len) r.r_name)

  let store r ~proc ~off data =
    let mem = r.r_mem in
    check_proc mem proc;
    check_open mem "store";
    let len = String.length data in
    check_range r off len "store";
    op_hook mem Memory.Op_store;
    mem.s_stores <- mem.s_stores + 1;
    if len > 0 then begin
      Bytes.blit_string data 0 r.buf off len;
      let ss = mem.sector_size in
      for s = off / ss to (off + len - 1) / ss do
        Hashtbl.replace r.dirty s ()
      done
    end

  let load r ~proc ~off ~len =
    let mem = r.r_mem in
    check_proc mem proc;
    check_open mem "load";
    check_range r off len "load";
    op_hook mem Memory.Op_load;
    mem.s_loads <- mem.s_loads + 1;
    Bytes.sub_string r.buf off len

  let store_int64 r ~proc ~off v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    store r ~proc ~off (Bytes.unsafe_to_string b)

  let load_int64 r ~proc ~off =
    String.get_int64_le (load r ~proc ~off ~len:8) 0

  let flush r ~proc ~off ~len =
    let mem = r.r_mem in
    check_proc mem proc;
    check_open mem "flush";
    check_range r off len "flush";
    op_hook mem Memory.Op_flush;
    (* A transient flush failure faults the whole instruction before any
       sector is queued — all-or-nothing, exactly like the simulator. *)
    (match mem.hooks with
    | Some h -> h.h_flush ~proc ~region:r.r_name
    | None -> ());
    if len > 0 then begin
      let ss = mem.sector_size in
      let first = off / ss and last = (off + len - 1) / ss in
      let queued = ref 0 in
      for s = first to last do
        if Hashtbl.mem r.dirty s then begin
          Hashtbl.remove r.dirty s;
          mem.s_flushes <- mem.s_flushes + 1;
          incr queued;
          let snapshot = Bytes.sub r.buf (s * ss) ss in
          let q = mem.pending.(proc) in
          q := { p_region = r; p_sector = s; p_data = snapshot } :: !q
        end
      done;
      if !queued > 0 && Onll_obs.Sink.active mem.sink then
        Onll_obs.Sink.emit mem.sink ~proc
          (Onll_obs.Event.Flush { lines = !queued })
    end

  let durable_snapshot r =
    let mem = r.r_mem in
    check_open mem "durable_snapshot";
    Bytes.sub_string (pread mem r.fd ~off:0 ~len:r.r_file_size) 0 r.r_size

  let dirty_sectors r =
    Hashtbl.fold (fun s _ acc -> s :: acc) r.dirty [] |> List.sort compare
end

(* One write-back attempt over the captured pending entries, from scratch:
   every sector is re-written (pwrite) and every touched file re-fsynced.
   Re-writing on retry is what makes a failed fsync recoverable at all —
   after fsyncgate semantics the kernel may have dropped the dirty pages,
   so "just fsync again" would durably lose them while reporting success.
   When the fault layer injects an EIO with page loss we physically revert
   this attempt's writes from pre-images, so only a full re-write can land
   the data. Raises on short write, EIO, ENOSPC; [Injected_crash] (the
   in-process kill) escapes untouched. *)
let write_back_attempt t entries =
  let hooks = t.hooks in
  let pre_images = ref [] in
  let touched = Hashtbl.create 4 in
  try
    List.iter
      (fun p ->
        let r = p.p_region in
        let ss = t.sector_size in
        let off = p.p_sector * ss in
        let len = Bytes.length p.p_data in
        (match hooks with
        | None -> ()
        | Some _ ->
            (* capture the pre-image so an injected page-dropping EIO can
               revert exactly what this attempt wrote *)
            let old = pread t r.fd ~off ~len in
            pre_images := (r, off, old) :: !pre_images);
        let allowed =
          match hooks with
          | None -> len
          | Some h -> h.h_write ~region:r.r_name ~sector:p.p_sector ~len
        in
        let allowed = min allowed len in
        if allowed > 0 then pwrite t r.fd ~off p.p_data ~pos:0 ~len:allowed;
        if allowed < len then begin
          t.s_short_writes <- t.s_short_writes + 1;
          raise
            (Short_write
               (Printf.sprintf "%s sector %d: %d of %d bytes" r.r_name
                  p.p_sector allowed len))
        end;
        if not (Hashtbl.mem touched r.r_name) then
          Hashtbl.replace touched r.r_name r)
      entries;
    Hashtbl.iter
      (fun _ r ->
        (match hooks with
        | None -> ()
        | Some h -> (
            match h.h_fsync ~region:r.r_name with
            | `Ok -> ()
            | `Eio drop_pages ->
                if drop_pages then
                  List.iter
                    (fun (r', off, old) ->
                      if r' == r then
                        pwrite t r'.fd ~off old ~pos:0
                          ~len:(Bytes.length old))
                    !pre_images;
                raise (Unix.Unix_error (Unix.EIO, "fsync", r.r_name))));
        Unix.fsync r.fd;
        t.s_fsyncs <- t.s_fsyncs + 1)
      touched
  with
  | Unix.Unix_error ((Unix.EIO | Unix.ENOSPC), fn, arg) ->
      raise (Short_write (Printf.sprintf "%s(%s): I/O error" fn arg))

let fence t ~proc =
  check_proc t proc;
  check_open t "fence";
  (match t.degraded_reason with
  | Some reason -> raise (Degraded reason)
  | None -> ());
  op_hook t Memory.Op_fence;
  (* A transient fence failure leaves the pending set intact: the fence
     simply did not happen, and a retry drains everything. *)
  (match t.hooks with
  | Some h -> h.h_fence ~proc ~pending:(List.length !(t.pending.(proc)))
  | None -> ());
  t.s_fences <- t.s_fences + 1;
  let q = t.pending.(proc) in
  let persistent =
    match !q with
    | [] -> false
    | newest_first ->
        let entries = List.rev newest_first in
        let rec attempt n =
          match write_back_attempt t entries with
          | () -> ()
          | exception Short_write msg ->
              if n + 1 >= t.retry_budget then begin
                t.degraded_reason <-
                  Some
                    (Printf.sprintf
                       "fence write-back failed %d times, last: %s"
                       t.retry_budget msg);
                raise (Degraded (Option.get t.degraded_reason))
              end
              else begin
                t.s_fsync_retries <- t.s_fsync_retries + 1;
                if t.backoff_ns > 0 then
                  Unix.sleepf
                    (float_of_int (t.backoff_ns lsl min n 10) /. 1e9);
                attempt (n + 1)
              end
        in
        attempt 0;
        q := [];
        t.s_persistent_fences <- t.s_persistent_fences + 1;
        t.pf_by_proc.(proc) <- t.pf_by_proc.(proc) + 1;
        true
  in
  if Onll_obs.Sink.active t.sink then
    Onll_obs.Sink.emit t.sink ~proc (Onll_obs.Event.Fence { persistent })

let pending_write_backs t ~proc =
  check_proc t proc;
  List.length !(t.pending.(proc))

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.iter (fun _ r -> try Unix.close r.fd with Unix.Unix_error _ -> ())
      t.regions
  end

let stats t =
  {
    Stats.loads = t.s_loads;
    stores = t.s_stores;
    flushes = t.s_flushes;
    fences = t.s_fences;
    persistent_fences = t.s_persistent_fences;
    fsyncs = t.s_fsyncs;
    fsync_retries = t.s_fsync_retries;
    short_writes = t.s_short_writes;
  }

let persistent_fences_by t ~proc =
  check_proc t proc;
  t.pf_by_proc.(proc)

let reset_stats t =
  t.s_loads <- 0;
  t.s_stores <- 0;
  t.s_flushes <- 0;
  t.s_fences <- 0;
  t.s_persistent_fences <- 0;
  t.s_fsyncs <- 0;
  t.s_fsync_retries <- 0;
  t.s_short_writes <- 0;
  Array.fill t.pf_by_proc 0 (Array.length t.pf_by_proc) 0

let instance t : Memory_sig.t =
  (module struct
    let id = "file"
    let max_processes = t.max_processes

    type nonrec region = region

    let region ~name ~size = region t ~name ~size
    let find_region name = find_region t name
    let region_names () = region_names t
    let name = Region.name
    let size = Region.size
    let store = Region.store
    let load = Region.load
    let flush = Region.flush
    let durable_snapshot = Region.durable_snapshot
    let fence ~proc = fence t ~proc
    let pending_write_backs ~proc = pending_write_backs t ~proc
    let persistent_fences () = t.s_persistent_fences
  end)
