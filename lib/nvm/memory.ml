module Stats = struct
  type t = {
    loads : int;
    stores : int;
    flushes : int;
    fences : int;
    persistent_fences : int;
    crashes : int;
  }

  let zero =
    { loads = 0; stores = 0; flushes = 0; fences = 0; persistent_fences = 0;
      crashes = 0 }

  let sub a b =
    {
      loads = a.loads - b.loads;
      stores = a.stores - b.stores;
      flushes = a.flushes - b.flushes;
      fences = a.fences - b.fences;
      persistent_fences = a.persistent_fences - b.persistent_fences;
      crashes = a.crashes - b.crashes;
    }

  let pp ppf t =
    Format.fprintf ppf
      "loads=%d stores=%d flushes=%d fences=%d persistent_fences=%d crashes=%d"
      t.loads t.stores t.flushes t.fences t.persistent_fences t.crashes
end

exception Transient_fault of string
exception Injected_crash

type op_kind = Op_load | Op_store | Op_flush | Op_fence

type region = {
  r_name : string;
  r_size : int;
  nvm : Bytes.t;  (* durable contents; length rounded up to full lines *)
  overlay : (int, Bytes.t) Hashtbl.t;  (* dirty line -> volatile contents *)
  r_mem : t;
}

and pending = { p_region : region; p_line : int; p_data : Bytes.t }

and hooks = {
  h_op : op_kind -> unit;
  h_flush : proc:int -> region:string -> unit;
  h_fence : proc:int -> pending:int -> unit;
  h_crash : unit -> unit;
}

and t = {
  line_size : int;
  max_processes : int;
  regions : (string, region) Hashtbl.t;
  pending : pending list ref array;  (* per process, newest first *)
  mutable sink : Onll_obs.Sink.t;
  mutable hooks : hooks option;
  mutable s_loads : int;
  mutable s_stores : int;
  mutable s_flushes : int;
  mutable s_fences : int;
  mutable s_persistent_fences : int;
  mutable s_crashes : int;
  pf_by_proc : int array;
}

let op_hook t kind =
  match t.hooks with None -> () | Some h -> h.h_op kind

let create ?(line_size = 64) ?(sink = Onll_obs.Sink.null) ~max_processes () =
  if line_size < 1 then invalid_arg "Memory.create: line_size < 1";
  if max_processes < 1 then invalid_arg "Memory.create: max_processes < 1";
  {
    line_size;
    max_processes;
    regions = Hashtbl.create 8;
    pending = Array.init max_processes (fun _ -> ref []);
    sink;
    hooks = None;
    s_loads = 0;
    s_stores = 0;
    s_flushes = 0;
    s_fences = 0;
    s_persistent_fences = 0;
    s_crashes = 0;
    pf_by_proc = Array.make max_processes 0;
  }

let sink t = t.sink
let set_sink t s = t.sink <- s
let set_hooks t h = t.hooks <- h

let line_size t = t.line_size
let max_processes t = t.max_processes

let check_proc t proc =
  if proc < 0 || proc >= t.max_processes then
    invalid_arg (Printf.sprintf "Memory: process id %d out of range" proc)

let region t ~name ~size =
  if size <= 0 then invalid_arg "Memory.region: non-positive size";
  if Hashtbl.mem t.regions name then
    invalid_arg (Printf.sprintf "Memory.region: duplicate region %S" name);
  let lines = (size + t.line_size - 1) / t.line_size in
  let r =
    {
      r_name = name;
      r_size = size;
      nvm = Bytes.make (lines * t.line_size) '\000';
      overlay = Hashtbl.create 64;
      r_mem = t;
    }
  in
  Hashtbl.replace t.regions name r;
  r

let find_region t name = Hashtbl.find_opt t.regions name

(* Current volatile contents of a line: the overlay if dirty, else NVM. *)
let line_contents r line =
  match Hashtbl.find_opt r.overlay line with
  | Some b -> b
  | None ->
      let ls = r.r_mem.line_size in
      Bytes.sub r.nvm (line * ls) ls

let dirty_line_for_write r line =
  match Hashtbl.find_opt r.overlay line with
  | Some b -> b
  | None ->
      let ls = r.r_mem.line_size in
      let b = Bytes.sub r.nvm (line * ls) ls in
      Hashtbl.replace r.overlay line b;
      b

let write_back r line data =
  let ls = r.r_mem.line_size in
  Bytes.blit data 0 r.nvm (line * ls) ls;
  (* If the cache copy is now identical to NVM the line is clean. *)
  match Hashtbl.find_opt r.overlay line with
  | Some b when Bytes.equal b data -> Hashtbl.remove r.overlay line
  | Some _ | None -> ()

module Region = struct
  type nonrec t = region

  let name r = r.r_name
  let size r = r.r_size
  let memory r = r.r_mem

  let check_range r off len what =
    if off < 0 || len < 0 || off + len > r.r_size then
      invalid_arg
        (Printf.sprintf "Region.%s: [%d, %d) out of bounds for %S (size %d)"
           what off (off + len) r.r_name r.r_size)

  let store r ~proc ~off data =
    let mem = r.r_mem in
    check_proc mem proc;
    let len = String.length data in
    check_range r off len "store";
    op_hook mem Op_store;
    mem.s_stores <- mem.s_stores + 1;
    let ls = mem.line_size in
    let pos = ref 0 in
    while !pos < len do
      let abs = off + !pos in
      let line = abs / ls in
      let in_line = abs mod ls in
      let chunk = min (ls - in_line) (len - !pos) in
      let b = dirty_line_for_write r line in
      Bytes.blit_string data !pos b in_line chunk;
      pos := !pos + chunk
    done

  let load r ~proc ~off ~len =
    let mem = r.r_mem in
    check_proc mem proc;
    check_range r off len "load";
    op_hook mem Op_load;
    mem.s_loads <- mem.s_loads + 1;
    let ls = mem.line_size in
    let out = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let abs = off + !pos in
      let line = abs / ls in
      let in_line = abs mod ls in
      let chunk = min (ls - in_line) (len - !pos) in
      let src = line_contents r line in
      Bytes.blit src in_line out !pos chunk;
      pos := !pos + chunk
    done;
    Bytes.unsafe_to_string out

  let store_int64 r ~proc ~off v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    store r ~proc ~off (Bytes.unsafe_to_string b)

  let load_int64 r ~proc ~off =
    String.get_int64_le (load r ~proc ~off ~len:8) 0

  let flush r ~proc ~off ~len =
    let mem = r.r_mem in
    check_proc mem proc;
    check_range r off len "flush";
    op_hook mem Op_flush;
    (* A transient flush failure faults the whole instruction before any
       line is queued: all-or-nothing, so a retry re-issues every line. *)
    (match mem.hooks with
    | Some h -> h.h_flush ~proc ~region:r.r_name
    | None -> ());
    if len > 0 then begin
      let ls = mem.line_size in
      let first = off / ls and last = (off + len - 1) / ls in
      let queued = ref 0 in
      for line = first to last do
        match Hashtbl.find_opt r.overlay line with
        | None -> ()  (* clean line: nothing to write back *)
        | Some b ->
            mem.s_flushes <- mem.s_flushes + 1;
            incr queued;
            let snapshot = Bytes.copy b in
            let q = mem.pending.(proc) in
            q := { p_region = r; p_line = line; p_data = snapshot } :: !q
      done;
      if !queued > 0 && Onll_obs.Sink.active mem.sink then
        Onll_obs.Sink.emit mem.sink ~proc
          (Onll_obs.Event.Flush { lines = !queued })
    end

  let durable_snapshot r = Bytes.sub_string r.nvm 0 r.r_size

  let dirty_lines r =
    Hashtbl.fold (fun line _ acc -> line :: acc) r.overlay []
    |> List.sort compare

  let corrupt r ~off ~len ~f =
    check_range r off len "corrupt";
    for i = 0 to len - 1 do
      Bytes.set r.nvm (off + i) (f i (Bytes.get r.nvm (off + i)))
    done
end

let region_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.regions []
  |> List.sort compare

(* Durable image format: [count] then per region [name][size][bytes], all
   wrapped in a CRC-protected envelope via the codec library. *)
let image_codec =
  Onll_util.Codec.(list (pair string string))

(* Crash-atomic: write the image to a temp file, fsync it, then rename
   over the destination (and best-effort fsync the directory so the
   rename itself is durable). A crash at any instant leaves either the
   old image or the new one — never a torn file at [path]. *)
let save_image t ~path =
  let payload =
    Onll_util.Codec.encode image_codec
      (List.map
         (fun name ->
           let r = Hashtbl.find t.regions name in
           (name, Region.durable_snapshot r))
         (region_names t))
  in
  let crc = Onll_util.Crc32.string payload in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc
       (Onll_util.Codec.encode
          Onll_util.Codec.(pair int32 string)
          (crc, payload));
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let load_image t ~path =
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let crc, payload =
    try Onll_util.Codec.(decode (pair int32 string) raw)
    with Onll_util.Codec.Decode_error m ->
      invalid_arg ("Memory.load_image: malformed image: " ^ m)
  in
  if crc <> Onll_util.Crc32.string payload then
    invalid_arg "Memory.load_image: checksum mismatch";
  let regions =
    try Onll_util.Codec.decode image_codec payload
    with Onll_util.Codec.Decode_error m ->
      invalid_arg ("Memory.load_image: malformed image: " ^ m)
  in
  List.iter
    (fun (name, bytes) ->
      match Hashtbl.find_opt t.regions name with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Memory.load_image: image region %S not allocated here" name)
      | Some r ->
          (* snapshots cover [r_size] bytes; nvm is line-rounded *)
          if String.length bytes <> r.r_size then
            invalid_arg
              (Printf.sprintf "Memory.load_image: size mismatch for %S" name);
          Bytes.blit_string bytes 0 r.nvm 0 (String.length bytes);
          Hashtbl.reset r.overlay)
    regions

let fence t ~proc =
  check_proc t proc;
  op_hook t Op_fence;
  (* A transient fence failure leaves the pending set intact: the fence
     simply did not happen, and a retry drains everything. *)
  (match t.hooks with
  | Some h -> h.h_fence ~proc ~pending:(List.length !(t.pending.(proc)))
  | None -> ());
  t.s_fences <- t.s_fences + 1;
  let q = t.pending.(proc) in
  let persistent =
    match !q with
    | [] -> false
    | entries ->
        t.s_persistent_fences <- t.s_persistent_fences + 1;
        t.pf_by_proc.(proc) <- t.pf_by_proc.(proc) + 1;
        (* Apply in issue order (the list is newest-first). *)
        List.iter
          (fun p -> write_back p.p_region p.p_line p.p_data)
          (List.rev entries);
        q := [];
        true
  in
  if Onll_obs.Sink.active t.sink then
    Onll_obs.Sink.emit t.sink ~proc (Onll_obs.Event.Fence { persistent })

let pending_write_backs t ~proc =
  check_proc t proc;
  List.length !(t.pending.(proc))

let crash t ~policy =
  t.s_crashes <- t.s_crashes + 1;
  if Onll_obs.Sink.active t.sink then
    Onll_obs.Sink.emit t.sink ~proc:(-1) Onll_obs.Event.Crash;
  let survives =
    match policy with
    | Crash_policy.Drop_all -> fun () -> false
    | Crash_policy.Persist_all -> fun () -> true
    | Crash_policy.Random seed ->
        let rng = Onll_util.Splitmix.create seed in
        fun () -> Onll_util.Splitmix.bool rng
  in
  (* Pending (flushed but unfenced) write-backs may have completed. *)
  Array.iter
    (fun q ->
      List.iter
        (fun p -> if survives () then write_back p.p_region p.p_line p.p_data)
        (List.rev !q);
      q := [])
    t.pending;
  (* Dirty lines may have been spontaneously evicted. *)
  Hashtbl.iter
    (fun _ r ->
      let lines =
        Hashtbl.fold (fun line b acc -> (line, b) :: acc) r.overlay []
      in
      List.iter
        (fun (line, b) -> if survives () then write_back r line b)
        (List.sort compare lines);
      Hashtbl.reset r.overlay)
    t.regions;
  (* Media degradation at power loss: the fault layer may now corrupt
     durable bytes (bit rot, torn multi-line writes) via {!Region.corrupt}. *)
  match t.hooks with Some h -> h.h_crash () | None -> ()

let stats t =
  {
    Stats.loads = t.s_loads;
    stores = t.s_stores;
    flushes = t.s_flushes;
    fences = t.s_fences;
    persistent_fences = t.s_persistent_fences;
    crashes = t.s_crashes;
  }

let persistent_fences_by t ~proc =
  check_proc t proc;
  t.pf_by_proc.(proc)

let reset_stats t =
  t.s_loads <- 0;
  t.s_stores <- 0;
  t.s_flushes <- 0;
  t.s_fences <- 0;
  t.s_persistent_fences <- 0;
  t.s_crashes <- 0;
  Array.fill t.pf_by_proc 0 (Array.length t.pf_by_proc) 0

let instance t : Memory_sig.t =
  (module struct
    let id = "sim"
    let max_processes = t.max_processes

    type nonrec region = region

    let region ~name ~size = region t ~name ~size
    let find_region name = find_region t name
    let region_names () = region_names t
    let name = Region.name
    let size = Region.size
    let store = Region.store
    let load = Region.load
    let flush = Region.flush
    let durable_snapshot = Region.durable_snapshot
    let fence ~proc = fence t ~proc
    let pending_write_backs ~proc = pending_write_backs t ~proc
    let persistent_fences () = t.s_persistent_fences
  end)
