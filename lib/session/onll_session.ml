(** Durable client sessions (see onll_session.mli). *)

module Codec = Onll_util.Codec
module Splitmix = Onll_util.Splitmix
module Sink = Onll_obs.Sink
module Event = Onll_obs.Event
module Metrics = Onll_obs.Metrics

type error = Timeout | Overloaded | Degraded

let pp_error ppf = function
  | Timeout -> Format.pp_print_string ppf "timeout"
  | Overloaded -> Format.pp_print_string ppf "overloaded"
  | Degraded -> Format.pp_print_string ppf "degraded"

type degradation = Fail_writes | Read_only | Best_effort

type config = {
  log_capacity : int;
  replicas : int;
  max_attempts : int;
  backoff_base : int;
  backoff_cap : int;
  deadline : int;
  high_watermark : float;
  check_pressure_every : int;
  degradation : degradation;
  rng_seed : int;
}

let default_config =
  {
    log_capacity = 4096;
    replicas = 1;
    max_attempts = 8;
    backoff_base = 1;
    backoff_cap = 64;
    deadline = 256;
    high_watermark = 0.85;
    check_pressure_every = 16;
    degradation = Fail_writes;
    rng_seed = 0;
  }

(* The durable client record is a log of these. [Intent] is appended
   before every object invocation: the sequence number it consumes, the
   ack watermark as of that moment (the previous operation's durable
   acknowledgement piggybacks here — no extra fence), and the encoded
   operation so recovery can re-invoke it. [Intent_at] is the same record
   for sessions whose backend allocates a distinct object identity
   ([b_alloc]): the chosen object sequence number rides in the intent, so
   the (client seq -> object seq) mapping is exactly as durable as the
   intent itself — recovery can interrogate [was_linearized] about the
   precise identity the invocation would have used. Sessions without an
   allocator keep writing byte-identical [Intent] records. [Summary]
   replaces the whole prefix at compaction. *)
type record =
  | Intent of int * int * string  (* seq, acked_below, encoded op *)
  | Summary of int * int  (* next_seq, acked_below *)
  | Intent_at of int * int * int * string
      (* seq, object seq, acked_below, encoded op *)

let record_codec =
  Codec.tagged
    (function
      | Intent (seq, ack, op) ->
          (0, Codec.encode Codec.(triple int int string) (seq, ack, op))
      | Summary (next, ack) -> (1, Codec.encode Codec.(pair int int) (next, ack))
      | Intent_at (seq, oseq, ack, op) ->
          ( 2,
            Codec.encode
              Codec.(pair (pair int int) (pair int string))
              ((seq, oseq), (ack, op)) ))
    (fun tag payload ->
      match tag with
      | 0 ->
          let seq, ack, op =
            Codec.decode Codec.(triple int int string) payload
          in
          Intent (seq, ack, op)
      | 1 ->
          let next, ack = Codec.decode Codec.(pair int int) payload in
          Summary (next, ack)
      | 2 ->
          let (seq, oseq), (ack, op) =
            Codec.decode
              Codec.(pair (pair int int) (pair int string))
              payload
          in
          Intent_at (seq, oseq, ack, op)
      | _ -> raise (Codec.Decode_error "Onll_session: unknown record tag"))

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  module L = Onll_plog.Plog.Make (M)

  type backend = {
    b_update_detectable : seq:int -> S.update_op -> S.value;
    b_was_linearized : S.update_op -> Onll_core.Onll.op_id -> bool;
    b_read : S.read_op -> S.value;
    b_degraded : unit -> bool;
    b_pressure : unit -> float;
    b_alloc : (unit -> int) option;
        (* When several sessions share one object through the same client
           identity (a server hosting many clients on one machine process),
           their private sequence counters would collide as object
           identities. [b_alloc] draws each invocation's object sequence
           number from a shared allocator instead; [None] keeps the
           session's own counter (the single-tenant default). Allocated
           numbers must never repeat across crashes — a reused number can
           impersonate an old operation under [was_linearized]. *)
  }

  module Over
      (C : Onll_core.Onll.CONSTRUCTION
             with type update_op = S.update_op
              and type read_op = S.read_op
              and type value = S.value) =
  struct
    let backend ?log_capacity c =
      let cap =
        match log_capacity with
        | Some n -> n
        | None -> Onll_core.Onll.Config.default.log_capacity
      in
      let capf = float_of_int (max cap 1) in
      {
        b_update_detectable = (fun ~seq op -> C.update_detectable c ~seq op);
        b_was_linearized = (fun _op id -> C.was_linearized c id);
        b_read = (fun r -> C.read c r);
        b_degraded = (fun () -> C.degraded c);
        b_pressure =
          (fun () ->
            let snap = C.snapshot c in
            List.fold_left
              (fun acc (l : Onll_core.Onll.Snapshot.log) ->
                Float.max acc (float_of_int l.live_bytes /. capf))
              0. snap.Onll_core.Onll.Snapshot.logs);
        b_alloc = None;
      }
  end

  type t = {
    cfg : config;
    sink : Sink.t;
    t_client : int;
    proc : int;  (* machine process running this session's durable work *)
    backend : backend;
    log : L.t;
    lname : string;
    rng : Splitmix.t;
    mutable next : int;  (* next fresh sequence number *)
    mutable acked : int;  (* every seq below this is resolved *)
    mutable pend : (int * int * S.update_op) option;
        (* durable in-doubt op: session seq, object seq, op *)
    mutable submits : int;  (* submissions since attach (pressure sampling) *)
    mutable last_pressure : float;
    mutable attempts : Onll_core.Onll.op_id list;  (* newest first *)
    (* metric handles, resolved once *)
    m_retries : Metrics.counter;
    m_indoubt : Metrics.counter;
    m_compactions : Metrics.counter;
    m_degraded_writes : Metrics.counter;
    m_degraded_reads : Metrics.counter;
    m_session_ops : Metrics.counter;
    m_session_fences : Metrics.counter;
    m_compact_fences : Metrics.counter;
    h_ok : Metrics.histogram;
    h_timeout : Metrics.histogram;
    h_shed : Metrics.histogram;
    h_degraded : Metrics.histogram;
  }

  type resolution =
    | No_pending
    | Was_applied of Onll_core.Onll.op_id
    | Reinvoked of Onll_core.Onll.op_id * Onll_core.Onll.op_id * S.value
    | Refused of Onll_core.Onll.op_id
    | Unresolved of Onll_core.Onll.op_id * error

  let pp_resolution ppf = function
    | No_pending -> Format.pp_print_string ppf "no-pending"
    | Was_applied id ->
        Format.fprintf ppf "was-applied(%a)" Onll_core.Onll.pp_op_id id
    | Reinvoked (old_id, fresh, _) ->
        Format.fprintf ppf "reinvoked(%a as %a)" Onll_core.Onll.pp_op_id
          old_id Onll_core.Onll.pp_op_id fresh
    | Refused id ->
        Format.fprintf ppf "refused(%a)" Onll_core.Onll.pp_op_id id
    | Unresolved (id, e) ->
        Format.fprintf ppf "unresolved(%a: %a)" Onll_core.Onll.pp_op_id id
          pp_error e

  let emit_outcome t ~seq outcome =
    if Sink.active t.sink then
      Sink.emit t.sink ~proc:t.proc
        (Event.Session { client = t.t_client; seq; outcome })

  let observe t hist t0 =
    if Sink.active t.sink then Metrics.observe hist (Sink.now t.sink - t0)

  (* Rebuild the volatile cursors from the durable record. The last intent
     is the in-doubt operation unless a later ack watermark (piggybacked on
     a subsequent record) already passed it. Undecodable entries are
     skipped: the log layer's salvage has already quarantined media damage,
     and a half-written record can only be the torn last entry. *)
  let refold t =
    t.next <- 0;
    t.acked <- 0;
    t.pend <- None;
    List.iter
      (fun e ->
        match Codec.decode record_codec e with
        | Intent (seq, ack, opb) ->
            if seq >= t.next then t.next <- seq + 1;
            if ack > t.acked then t.acked <- ack;
            (match Codec.decode S.update_codec opb with
            | op -> t.pend <- Some (seq, seq, op)
            | exception Codec.Decode_error _ -> ())
        | Intent_at (seq, oseq, ack, opb) ->
            if seq >= t.next then t.next <- seq + 1;
            if ack > t.acked then t.acked <- ack;
            (match Codec.decode S.update_codec opb with
            | op -> t.pend <- Some (seq, oseq, op)
            | exception Codec.Decode_error _ -> ())
        | Summary (next, ack) ->
            if next > t.next then t.next <- next;
            if ack > t.acked then t.acked <- ack
        | exception Codec.Decode_error _ -> ())
      (L.entries t.log);
    match t.pend with
    | Some (seq, _, _) when seq < t.acked -> t.pend <- None
    | _ -> ()

  let attach ?(config = default_config) ?(sink = Sink.null) ?name ?proc
      ~client backend =
    if client < 0 then
      invalid_arg "Onll_session.attach: client out of range";
    let proc = match proc with Some p -> p | None -> client in
    if proc < 0 || proc >= M.max_processes then
      invalid_arg "Onll_session.attach: proc out of range";
    let lname =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "%s.session.c%d" S.name client
    in
    let log =
      L.create ~sink ~replicas:config.replicas ~name:lname
        ~capacity:config.log_capacity ()
    in
    let reg = Sink.registry sink in
    let t =
      {
        cfg = config;
        sink;
        t_client = client;
        proc;
        backend;
        log;
        lname;
        rng =
          (* Jitter is deterministic per (seed, client): campaigns replay
             byte-identically under a pinned [rng_seed]; 0 keeps the
             historical per-client derivation. *)
          Splitmix.create
            (if config.rng_seed = 0 then 0x5e5510 + (client * 7919)
             else config.rng_seed + (client * 7919));
        next = 0;
        acked = 0;
        pend = None;
        submits = 0;
        last_pressure = 0.;
        attempts = [];
        m_retries = Metrics.counter reg "session.retries";
        m_indoubt = Metrics.counter reg "session.indoubt";
        m_compactions = Metrics.counter reg "session.compactions";
        m_degraded_writes = Metrics.counter reg "session.degraded_writes";
        m_degraded_reads = Metrics.counter reg "session.degraded_reads";
        m_session_ops = Metrics.counter reg "ops.session";
        m_session_fences = Metrics.counter reg "fences.session";
        m_compact_fences = Metrics.counter reg "fences.session.compact";
        h_ok = Metrics.histogram reg "session.latency.ok";
        h_timeout = Metrics.histogram reg "session.latency.timeout";
        h_shed = Metrics.histogram reg "session.latency.shed";
        h_degraded = Metrics.histogram reg "session.latency.degraded";
      }
    in
    refold t;
    t

  let client t = t.t_client
  let next_seq t = t.next
  let acked_below t = t.acked

  let pending t =
    match t.pend with
    | None -> None
    | Some (_, oseq, op) ->
        Some ({ Onll_core.Onll.id_proc = t.proc; id_seq = oseq }, op)

  let last_attempt_ids t = List.rev t.attempts
  let pressure t = t.last_pressure
  let log_name t = t.lname

  let check_owner t fn =
    let p = M.self () in
    if p <> t.proc then
      invalid_arg
        (Printf.sprintf "Onll_session.%s: process %d on client %d's session"
           fn p t.t_client)

  (* Compact the client-record log when headroom runs low. Summary-first:
     the summary (which subsumes every earlier record) is appended before
     any entry is dropped, so a crash anywhere in this sequence leaves a
     durable prefix that refolds to the same cursors — in particular the
     sequence allocator can never move backwards. *)
  let summary_slack = 96

  let maybe_compact t ~need =
    if L.free_bytes t.log < need + summary_slack then begin
      let pf0 = M.persistent_fences_by ~proc:t.proc in
      let summary = Codec.encode record_codec (Summary (t.next, t.acked)) in
      L.append t.log summary;
      let n = L.entry_count t.log in
      if n > 1 then L.set_head t.log (n - 1);
      L.relocate t.log;
      if Sink.active t.sink then begin
        Metrics.incr t.m_compactions;
        Metrics.add t.m_compact_fences
          (M.persistent_fences_by ~proc:t.proc - pf0)
      end
    end

  (* Durably append the intent record: the one persistent fence the
     session adds per submission, attributed to fences.session/ops.session
     (never to the object's per-update accounting). The tag-0 [Intent]
     byte layout is kept whenever the object seq equals the session seq,
     so single-tenant session logs are unchanged on media. *)
  let append_intent t ~seq ~oseq opb =
    let record =
      if oseq = seq then Intent (seq, t.acked, opb)
      else Intent_at (seq, oseq, t.acked, opb)
    in
    let bytes = Codec.encode record_codec record in
    maybe_compact t ~need:(String.length bytes + 16);
    let pf0 = M.persistent_fences_by ~proc:t.proc in
    L.append t.log bytes;
    if Sink.active t.sink then begin
      Metrics.incr t.m_session_ops;
      Metrics.add t.m_session_fences
        (M.persistent_fences_by ~proc:t.proc - pf0)
    end

  (* Bounded exponential backoff with deterministic jitter. Returns [true]
     to retry, [false] when the attempt or deadline budget is exhausted.
     [budget] accumulates the logical backoff spent on this operation. *)
  let backoff t ~site ~attempt budget =
    if attempt >= t.cfg.max_attempts then false
    else begin
      let base =
        min (t.cfg.backoff_base * (1 lsl min (attempt - 1) 20)) t.cfg.backoff_cap
      in
      let delay = base + Splitmix.int t.rng (base + 1) in
      budget := !budget + delay;
      if t.cfg.deadline > 0 && !budget > t.cfg.deadline then false
      else begin
        if Sink.active t.sink then begin
          Metrics.incr t.m_retries;
          Sink.emit t.sink ~proc:t.proc (Event.Retry { site; attempt })
        end;
        for _ = 1 to delay do
          M.pause ()
        done;
        true
      end
    end

  (* The shared exactly-once invocation path: append the intent for a
     fresh sequence number, invoke the object under it, ack. Each retry
     after a transient fault runs under a *fresh* identity, and only after
     [was_linearized] has denied the previous one — an identity is never
     invoked twice, so at most one attempt can ever take effect. *)
  let invoke t op =
    let opb = Codec.encode S.update_codec op in
    let budget = ref 0 in
    let rec attempt_intent n =
      let seq = t.next in
      let oseq =
        match t.backend.b_alloc with Some f -> f () | None -> seq
      in
      attempt_intent_at n seq oseq
    and attempt_intent_at n seq oseq =
      match append_intent t ~seq ~oseq opb with
      | () ->
          t.next <- seq + 1;
          t.pend <- Some (seq, oseq, op);
          attempt_invoke n seq oseq
      | exception Onll_nvm.Memory.Transient_fault _ ->
          (* The append did not advance the log's cursor, and [oseq] never
             reached the object — but the bytes may still reach media (a
             crash can flush them), so the operation is in-doubt under
             this identity from here on. Retry under the SAME seq and
             oseq: the failed append never advanced the tail, so the
             retried record overwrites the same offset and carries the
             same identity — at most one intent for it can ever be
             durable, and either one refolds to the same cursors. Keeping
             the allocator dense here matters: identities are burned only
             when the object itself is in doubt, never by client-record
             churn. *)
          t.pend <- Some (seq, oseq, op);
          if backoff t ~site:"session.intent" ~attempt:n budget then
            attempt_intent_at (n + 1) seq oseq
          else Error Timeout
    and attempt_invoke n seq oseq =
      let id = { Onll_core.Onll.id_proc = t.proc; id_seq = oseq } in
      t.attempts <- id :: t.attempts;
      match t.backend.b_update_detectable ~seq:oseq op with
      | v ->
          t.acked <- seq + 1;
          t.pend <- None;
          Ok (id, v)
      | exception Onll_nvm.Memory.Transient_fault _ ->
          (* A transient escaped the object's own bounded retry during its
             persist stage — *after* the operation was ordered. Ask before
             acting: if the operation is (or will be, via helping) in the
             history, re-invoking it would duplicate it. *)
          if t.backend.b_was_linearized op id then begin
            if Sink.active t.sink then Metrics.incr t.m_indoubt;
            Error Timeout (* applied but unacknowledged; resolve via recover *)
          end
          else if backoff t ~site:"session.invoke" ~attempt:n budget then
            attempt_intent (n + 1)
          else Error Timeout
    in
    attempt_intent 1

  let submit t op =
    check_owner t "submit";
    (match t.pend with
    | Some (seq, _, _) when seq >= t.acked ->
        invalid_arg
          (Printf.sprintf
             "Onll_session.submit: operation seq=%d is unresolved (call \
              recover first)"
             seq)
    | _ -> ());
    let t0 = if Sink.active t.sink then Sink.now t.sink else 0 in
    let degraded = t.backend.b_degraded () in
    if degraded && t.cfg.degradation <> Best_effort then begin
      emit_outcome t ~seq:t.next Sess_refused;
      observe t t.h_degraded t0;
      Error Degraded
    end
    else begin
      if degraded && Sink.active t.sink then
        Metrics.incr t.m_degraded_writes;
      if t.submits mod max t.cfg.check_pressure_every 1 = 0 then
        t.last_pressure <- t.backend.b_pressure ();
      t.submits <- t.submits + 1;
      if t.cfg.high_watermark < 1.0 && t.last_pressure >= t.cfg.high_watermark
      then begin
        emit_outcome t ~seq:t.next Sess_shed;
        observe t t.h_shed t0;
        Error Overloaded
      end
      else begin
        t.attempts <- [];
        match invoke t op with
        | Ok (id, v) ->
            emit_outcome t ~seq:id.Onll_core.Onll.id_seq Sess_ok;
            observe t t.h_ok t0;
            Ok v
        | Error e ->
            let seq =
              match t.pend with Some (s, _, _) -> s | None -> t.next
            in
            emit_outcome t ~seq Sess_timeout;
            observe t t.h_timeout t0;
            Error e
      end
    end

  let recover t =
    check_owner t "recover";
    let (_ : Onll_plog.Plog.salvage_report) = L.recover t.log in
    refold t;
    match t.pend with
    | None -> No_pending
    | Some (seq, oseq, op) -> (
        let old_id = { Onll_core.Onll.id_proc = t.proc; id_seq = oseq } in
        if t.backend.b_was_linearized op old_id then begin
          (* Exactly-once, applied half: the in-doubt operation is in the
             adopted history — never re-invoke it. *)
          t.acked <- max t.acked (seq + 1);
          t.pend <- None;
          emit_outcome t ~seq Sess_applied;
          Was_applied old_id
        end
        else if t.backend.b_degraded () && t.cfg.degradation = Read_only
        then begin
          emit_outcome t ~seq Sess_refused;
          Refused old_id
        end
        else begin
          (* Exactly-once, lost half: the operation did not survive the
             crash; honour the promise by re-invoking it under a fresh
             identity (the old one is definitively dead post-recovery). *)
          t.attempts <- [];
          match invoke t op with
          | Ok (fresh, v) ->
              emit_outcome t ~seq:fresh.Onll_core.Onll.id_seq Sess_reinvoked;
              Reinvoked (old_id, fresh, v)
          | Error e ->
              emit_outcome t ~seq Sess_timeout;
              Unresolved (old_id, e)
        end)

  let read t r =
    if t.backend.b_degraded () && Sink.active t.sink then
      Metrics.incr t.m_degraded_reads;
    t.backend.b_read r
end
