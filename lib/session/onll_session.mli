(** Durable client sessions (E15): exactly-once submission over any ONLL
    construction.

    The construction is {e detectable} — after a crash,
    {!Onll_core.Onll.CONSTRUCTION.was_linearized} answers whether a pending
    update took effect — but detectability is a primitive, not a protocol:
    every consumer still has to choose fresh sequence numbers that survive
    crashes, remember which operation was in flight, interrogate the
    recovered object, and decide whether to re-invoke. This module is that
    protocol, packaged: a per-client session that owns a small {e durable
    client record} (client id, next sequence number, last-acked sequence
    number) in its own single-fence {!Onll_plog.Plog} region, and drives
    {!Onll_core.Onll.CONSTRUCTION.update_detectable} so that

    {ul
    {- {b sequence numbers are never reused across crashes} — every
       submission appends an intent record {e before} invoking the object,
       so the next sequence number is always recoverable from media;}
    {- {b submission is exactly-once} — after a crash-restart, {!recover}
       resolves the one in-doubt operation: if it linearized, it is never
       re-invoked ({!resolution.Was_applied}); if it did not, it is
       re-invoked under a fresh identity ({!resolution.Reinvoked}) —
       either way the operation takes effect exactly once in the adopted
       history, which duplicate-sensitive objects (counter, ledger) make
       observable and the E15 campaign audits;}
    {- {b transient faults are retried, not leaked} — a flush/fence that
       keeps failing ({!Onll_nvm.Memory.Transient_fault} escaping the
       log's own bounded retry) is retried with bounded exponential
       backoff and deterministic jitter, and a per-operation deadline
       converts a stuck log into {!error.Timeout} instead of an unbounded
       hang;}
    {- {b overload is shed before it stalls} — watermark-based admission
       control refuses submissions ({!error.Overloaded}) while the
       backend's live history nears its log capacity, {e before} the
       construction's emergency checkpoint-and-compact path serialises
       every process behind a full log;}
    {- {b degraded media is a policy, not a surprise} — when the backend's
       sticky degraded flag is up (recovery or scrubbing admitted
       unrepairable loss), the session applies its configured
       {!degradation} policy: refuse new writes but still honour promised
       re-invocations ({!degradation.Fail_writes}), refuse all write-path
       work including re-invocations ({!degradation.Read_only}), or keep
       serving and count it ({!degradation.Best_effort}). Reads are served
       under every policy — the surviving state is admitted, never
       silent.}}

    {b Cost.} The session adds exactly {e one} persistent fence per
    submission — its own intent append — and {e zero} fences to the
    object's update path, which keeps Theorem 5.1's bound intact per
    layer: 1 pf for the client record + 1 pf for the update, 0 pf per
    read (asserted by the E1 fence audit for the ["onll-session"] registry
    entry). Session fences are attributed to ["fences.session"] /
    ["ops.session"] (and compaction of the session log itself to
    ["fences.session.compact"]), never to the object's per-update
    attribution.

    {b Timeout is indeterminate.} A submission that returns
    {!error.Timeout} may or may not take effect: if the intent became
    durable but the object invocation stalled, a later {!recover} will
    resolve it (possibly re-invoking it). This is the same indeterminacy a
    timed-out RPC has; clients that need the answer call {!recover} (or
    {!pending}) after the fault clears. *)

type error =
  | Timeout
      (** The per-operation deadline expired while retrying transient
          flush/fence faults. Indeterminate: the operation may yet take
          effect (see module doc). *)
  | Overloaded
      (** Admission control shed the submission before any durable work:
          the backend's live history exceeds the configured watermark
          fraction of its log capacity. Definitely not applied. *)
  | Degraded
      (** The degradation policy refused the submission: the backend has
          admitted unrepairable durable loss and this session is
          configured not to write over it. Definitely not applied. *)

val pp_error : Format.formatter -> error -> unit

(** What a session does with {e write-path} work once the backend's sticky
    degraded flag is up. Reads are served under every policy. *)
type degradation =
  | Fail_writes
      (** Refuse {e new} submissions with {!error.Degraded}, but still
          resolve and re-invoke the in-doubt operation at {!recover} —
          promised work is completed, new promises are not made. *)
  | Read_only
      (** Strictest: refuse new submissions {e and} withhold in-doubt
          re-invocation ({!resolution.Refused}) — the session performs no
          write of any kind over a degraded object; the pending operation
          stays pending for a later session (or policy) to resolve. *)
  | Best_effort
      (** Keep writing; every submission accepted while degraded is
          counted under ["session.degraded_writes"]. *)

type config = {
  log_capacity : int;
      (** entries area of the durable client-record log, bytes (default
          4096 — intents are tens of bytes and the log self-compacts) *)
  replicas : int;
      (** mirror the client record over this many regions (default 1);
          all replica flushes drain under the intent append's single
          fence, exactly as the object's logs do *)
  max_attempts : int;
      (** attempts per durable step before {!error.Timeout} (default 8) *)
  backoff_base : int;
      (** first retry's logical backoff (default 1); attempt [k] backs
          off [min (backoff_base * 2^(k-1)) backoff_cap] plus jitter *)
  backoff_cap : int;  (** exponential backoff ceiling (default 64) *)
  deadline : int;
      (** per-operation budget of cumulative logical backoff; once
          exceeded the submission returns {!error.Timeout} ([0] = no
          deadline, retry up to [max_attempts]; default 256) *)
  high_watermark : float;
      (** admission control: shed submissions while any backend log's
          live bytes exceed this fraction of its capacity (default 0.85;
          [>= 1.0] disables shedding) *)
  check_pressure_every : int;
      (** sample backend pressure every [n] submissions (a snapshot scan
          is cheap but not free; default 16, [1] = every submission) *)
  degradation : degradation;  (** default {!degradation.Fail_writes} *)
  rng_seed : int;
      (** seed for the backoff-jitter RNG. The jitter stream is a pure
          function of [(rng_seed, client)], so chaos campaigns replay
          byte-identically under a pinned seed. [0] (the default) keeps
          the historical per-client derivation — itself deterministic,
          but not campaign-selectable. *)
}

val default_config : config

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  (** What the session needs from the object: five closures, so one
      session type composes with the plain, mirrored, wait-free {e and}
      sharded constructions (whose module types differ). Build it with
      {!Over} for any {!Onll_core.Onll.CONSTRUCTION}, or by hand for the
      sharded construction (its [was_linearized] wants the operation for
      routing, which this record's shape already carries). *)
  type backend = {
    b_update_detectable : seq:int -> S.update_op -> S.value;
    b_was_linearized : S.update_op -> Onll_core.Onll.op_id -> bool;
    b_read : S.read_op -> S.value;
    b_degraded : unit -> bool;  (** the sticky degraded snapshot flag *)
    b_pressure : unit -> float;
        (** max over the backend's logs of live bytes / log capacity —
            the fraction compaction cannot reclaim *)
    b_alloc : (unit -> int) option;
        (** Object-identity allocator for {e multi-tenant} backends. When
            one machine process hosts many client sessions over the same
            object (a server front-end), each session's private sequence
            counter would collide with the others' as object identities
            — and a collision is not a crash, it is a {e wrong answer}:
            {!Onll_core.Onll.CONSTRUCTION.was_linearized} would vouch for
            another client's operation. [Some alloc] draws every
            invocation's object sequence number from the shared
            allocator; the drawn number is made durable inside the intent
            record itself, so recovery interrogates the exact identity
            the invocation would have used. The allocator must be
            monotone {e across crashes} (persist a watermark). [None]
            (and {!Over.backend}) keeps the session's own counter — the
            single-tenant default, byte-identical on media to E15. *)
  }

  (** Adapter for any unsharded construction instance. *)
  module Over
      (C : Onll_core.Onll.CONSTRUCTION
             with type update_op = S.update_op
              and type read_op = S.read_op
              and type value = S.value) : sig
    val backend : ?log_capacity:int -> C.t -> backend
    (** [log_capacity] must match the object's
        {!Onll_core.Onll.Config.t.log_capacity} (default
        {!Onll_core.Onll.Config.default}'s) — it is the denominator of
        {!backend.b_pressure}. *)
  end

  type t
  (** One client's durable session. Owned by a single process: {!submit}
      and {!recover} must be called by the machine process given to
      {!attach} as [?proc] (default: the client id). Operation identities
      embed [proc] — the construction's per-process tables are sized by
      its [max_processes], so [proc] must be a machine process id, never
      a raw client id; what keeps many clients on one process
      collision-free is the shared allocator's globally unique object
      sequence ({!backend.b_alloc}). *)

  (** How {!recover} disposed of the in-doubt operation. *)
  type resolution =
    | No_pending  (** no intent was outstanding *)
    | Was_applied of Onll_core.Onll.op_id
        (** the in-doubt operation is in the adopted history — {e not}
            re-invoked *)
    | Reinvoked of Onll_core.Onll.op_id * Onll_core.Onll.op_id * S.value
        (** [(old, fresh, value)]: the in-doubt operation did not survive;
            it was re-invoked under the fresh identity and returned
            [value] *)
    | Refused of Onll_core.Onll.op_id
        (** {!degradation.Read_only} withheld re-invocation on a degraded
            backend; the operation stays {!pending} *)
    | Unresolved of Onll_core.Onll.op_id * error
        (** the re-invocation attempt itself failed (e.g. transients are
            still raging: {!error.Timeout}); the operation stays
            {!pending} *)

  val pp_resolution : Format.formatter -> resolution -> unit

  val attach :
    ?config:config ->
    ?sink:Onll_obs.Sink.t ->
    ?name:string ->
    ?proc:int ->
    client:int ->
    backend ->
    t
  (** Open client [client]'s session over [backend], creating (or, after
      a restart over surviving media, re-reading) the durable client
      record log named [name] (default ["<spec>.session.c<client>"]).
      [proc] is the machine process that runs the session's durable work
      (default [client], the single-tenant case where client ids {e are}
      process ids); a server hosting many clients passes its own process
      id, freeing [client] to range over the whole authenticated
      population. Operation identities embed [proc] plus the object
      sequence drawn from {!backend.b_alloc} (durable inside the intent
      record), so a client's exactly-once history survives being
      re-homed, provided the new home attaches with the {e same} [proc]
      — recovery rebuilds the identity from the current [proc] and the
      recorded sequence. [sink] receives the session's events and
      hosts its counters and per-outcome latency histograms; install the
      same sink as the machine's and the object's for one interleaved
      stream. Attaching performs no object operations — call {!recover}
      before the first {!submit} if the media may hold an interrupted
      session. *)

  val recover : t -> resolution
  (** Crash-recovery resolution: salvage the client-record log, rebuild
      the volatile cursors (next/acked sequence numbers) from it, and
      resolve the in-doubt operation against the {e already-recovered}
      backend — exactly-once's crash half. Call it from the owning
      process after the backend's own recovery, before the first
      post-crash {!submit}. Idempotent: a second call answers
      {!resolution.No_pending} (or {!resolution.Was_applied} for an
      operation resolved as applied but not yet durably acked). *)

  val submit : t -> S.update_op -> (S.value, error) result
  (** Exactly-once submission: durably append the intent (one fence),
      invoke the object (one fence), ack. See the module doc for the
      retry/deadline/admission/degradation behaviour.
      @raise Onll_core.Onll.Log_full if the {e object}'s live history
      outgrows its log — terminal for the configured capacity, and
      normally prevented by admission control shedding first.
      @raise Invalid_argument if called with an unresolved {!pending}
      operation (call {!recover} first) or by a process other than the
      owning client. *)

  val read : t -> S.read_op -> S.value
  (** Read through the session: fence-free, never refused. Served under
      every degradation policy ({!degradation} governs writes only);
      reads over a degraded backend are counted under
      ["session.degraded_reads"]. *)

  (** {1 Introspection} *)

  val client : t -> int
  val next_seq : t -> int  (** as recovered/advanced; never reused *)

  val acked_below : t -> int
  (** Every sequence number below this has been resolved (acked to the
      client, or superseded by a recovery resolution). *)

  val pending : t -> (Onll_core.Onll.op_id * S.update_op) option
  (** The durable in-doubt operation, if any. *)

  val last_attempt_ids : t -> Onll_core.Onll.op_id list
  (** Every identity the most recent {!submit} (or {!recover}
      re-invocation) tried, oldest first — the hook the E15 harness uses
      to audit exactly-once at the identity level. Volatile. *)

  val pressure : t -> float
  (** The backend pressure sample admission control last acted on. *)

  val log_name : t -> string  (** the client record's region name *)
end
