(** Durable-linearizability checker (paper §5.2.1, Definitions 5.4–5.6).

    Records concurrent histories — invocations, responses and full-system
    crashes — and decides by exhaustive search whether a history is durably
    linearizable with respect to a sequential specification: does there
    exist a legal sequential order of the operations that
    {ul
    {- extends the real-time precedence order (L2),}
    {- assigns every {e completed} operation its recorded return value,}
    {- linearizes every completed operation within its own era (between two
       crashes), and}
    {- optionally includes or excludes operations left pending by a crash
       (the consistent-cut freedom of Definition 5.6)?}}

    The search is exponential in the worst case; it is meant as a test
    oracle for small windows (≤ ~60 operations, a few processes). *)

module Make (S : Onll_core.Spec.S) : sig
  type op_kind = Update of S.update_op | Read of S.read_op

  type event =
    | Invoke of { uid : int; proc : int; kind : op_kind }
    | Return of { uid : int; value : S.value }
    | Crash

  val pp_event : Format.formatter -> event -> unit

  (** Accumulates events in execution order. Under the simulator, recorder
      calls are not scheduling points, so instrumentation does not perturb
      the schedule; under the native machine, calls are serialised by an
      internal mutex. *)
  module Recorder : sig
    type t

    val create : unit -> t

    val invoke : t -> proc:int -> op_kind -> int
    (** Returns the fresh operation uid to pass to {!return_}. *)

    val return_ : t -> int -> S.value -> unit
    val crash : t -> unit
    val history : t -> event list

    val run_update :
      t -> proc:int -> S.update_op -> (S.update_op -> S.value) -> S.value
    (** [run_update r ~proc op f] records the invocation, runs [f op],
        records the response. *)

    val run_read :
      t -> proc:int -> S.read_op -> (S.read_op -> S.value) -> S.value
  end

  type verdict =
    | Durably_linearizable of int list
        (** witness: operation uids in linearization order (dropped pending
            operations omitted) *)
    | Violation of string
    | Budget_exhausted
        (** the search hit its state budget without a decision *)

  val pp_verdict : Format.formatter -> verdict -> unit

  val check : ?max_states:int -> event list -> verdict
  (** [check history] decides durable linearizability. [max_states]
      (default 2_000_000) bounds distinct memoised search states.
      @raise Invalid_argument on malformed histories (return without
      invocation, two pending invocations by one process, more than 62
      operations). *)

  (** {2 Buffered durable linearizability (E20)} *)

  type buffered_verdict =
    | Buffered_linearizable of { witness : int list; lost : int list }
        (** [witness]: every linearized operation in order, {e including}
            the lost ones (they executed before their crash); [lost]: the
            completed updates whose effects did not survive their era's
            crash, in witness order *)
    | Buffered_violation of string
    | Buffered_budget_exhausted

  val pp_buffered_verdict : Format.formatter -> buffered_verdict -> unit

  val check_buffered :
    ?max_states:int ->
    ?declared_lost:int list ->
    staleness:int ->
    event list ->
    buffered_verdict
  (** The relaxed-mode dual of {!check} ("The Path to Durable
      Linearizability"'s buffered variant, with a staleness bound): each
      era's linearization may carry a {e cut}; operations after the cut
      executed (their recorded values must still be legal) but are lost
      at the era's crash — the next era resumes from the state at the
      cut. Accepts a history iff some placement exists in which, per era,
      at most [staleness] completed updates fall after the cut. The lost
      set is structurally a {e suffix} of the era's linearization, so an
      operation that real-time-precedes a survivor can never be lost,
      lost effects are absent from every post-recovery read, and a lost
      operation can never resurrect after a later crash.

      [declared_lost] pins the cut to a recovery report
      ({!Onll_core.Onll.Recovery_report.t.lost_acked} mapped to history
      uids): exactly those operations — no more, no fewer among completed
      updates — must form the lost set, so an impostor report is a
      violation, not a wider search.
      @raise Invalid_argument as {!check}, or if [staleness < 0], or if a
      declared-lost uid is not an operation of the history. *)

  val validate_witness : event list -> int list -> (unit, string) result
  (** Independently verify a linearization witness against a history: the
      order must include every completed operation exactly once, respect
      real-time precedence and era boundaries, and replay to the recorded
      return values. [check]'s positive verdicts are validated with this in
      the test suite, so the searcher and the validator cross-check each
      other. *)
end
