module Make (S : Onll_core.Spec.S) = struct
  type op_kind = Update of S.update_op | Read of S.read_op

  type event =
    | Invoke of { uid : int; proc : int; kind : op_kind }
    | Return of { uid : int; value : S.value }
    | Crash

  let pp_kind ppf = function
    | Update u -> S.pp_update ppf u
    | Read r -> S.pp_read ppf r

  let pp_event ppf = function
    | Invoke { uid; proc; kind } ->
        Format.fprintf ppf "inv  #%d p%d %a" uid proc pp_kind kind
    | Return { uid; value } ->
        Format.fprintf ppf "ret  #%d -> %a" uid S.pp_value value
    | Crash -> Format.pp_print_string ppf "CRASH"

  module Recorder = struct
    type t = {
      mutable events : event list;  (* newest first *)
      mutable next_uid : int;
      lock : Mutex.t;
    }

    let create () = { events = []; next_uid = 0; lock = Mutex.create () }

    let push t e =
      Mutex.lock t.lock;
      t.events <- e :: t.events;
      Mutex.unlock t.lock

    let invoke t ~proc kind =
      Mutex.lock t.lock;
      let uid = t.next_uid in
      t.next_uid <- uid + 1;
      t.events <- Invoke { uid; proc; kind } :: t.events;
      Mutex.unlock t.lock;
      uid

    let return_ t uid value = push t (Return { uid; value })
    let crash t = push t Crash
    let history t = List.rev t.events

    let run_update t ~proc op f =
      let uid = invoke t ~proc (Update op) in
      let v = f op in
      return_ t uid v;
      v

    let run_read t ~proc rop f =
      let uid = invoke t ~proc (Read rop) in
      let v = f rop in
      return_ t uid v;
      v
  end

  type verdict =
    | Durably_linearizable of int list
    | Violation of string
    | Budget_exhausted

  let pp_verdict ppf = function
    | Durably_linearizable w ->
        Format.fprintf ppf "durably linearizable (witness: %s)"
          (String.concat " " (List.map string_of_int w))
    | Violation msg -> Format.fprintf ppf "VIOLATION: %s" msg
    | Budget_exhausted -> Format.pp_print_string ppf "budget exhausted"

  type op_info = {
    o_uid : int;
    o_proc : int;
    o_kind : op_kind;
    o_era : int;
    o_inv : int;  (* event position *)
    o_ret : int option;  (* event position of the response *)
    o_value : S.value option;
  }

  let parse events =
    let tbl = Hashtbl.create 32 in
    let order = ref [] in
    let era = ref 0 in
    let pending_by_proc = Hashtbl.create 8 in
    List.iteri
      (fun pos ev ->
        match ev with
        | Crash ->
            incr era;
            Hashtbl.reset pending_by_proc
        | Invoke { uid; proc; kind } ->
            if Hashtbl.mem tbl uid then
              invalid_arg "Histcheck: duplicate operation uid";
            if Hashtbl.mem pending_by_proc proc then
              invalid_arg
                (Printf.sprintf
                   "Histcheck: process %d has two pending invocations" proc);
            Hashtbl.replace pending_by_proc proc uid;
            Hashtbl.replace tbl uid
              {
                o_uid = uid;
                o_proc = proc;
                o_kind = kind;
                o_era = !era;
                o_inv = pos;
                o_ret = None;
                o_value = None;
              };
            order := uid :: !order
        | Return { uid; value } -> (
            match Hashtbl.find_opt tbl uid with
            | None -> invalid_arg "Histcheck: return without invocation"
            | Some info ->
                if info.o_ret <> None then
                  invalid_arg "Histcheck: duplicate return";
                if info.o_era <> !era then
                  invalid_arg "Histcheck: response crosses a crash";
                Hashtbl.remove pending_by_proc info.o_proc;
                Hashtbl.replace tbl uid
                  { info with o_ret = Some pos; o_value = Some value }))
      events;
    let uids = List.rev !order in
    (List.map (Hashtbl.find tbl) uids, !era + 1)

  let check ?(max_states = 2_000_000) events =
    let ops, n_eras = parse events in
    let n = List.length ops in
    if n > 62 then
      invalid_arg "Histcheck: more than 62 operations in one history";
    let ops = Array.of_list ops in
    (* Dense slot per op; build precedence masks: preds.(i) = ops that must
       be linearized before op i (they responded before i's invocation). *)
    let slot_of_uid = Hashtbl.create 16 in
    Array.iteri (fun i o -> Hashtbl.replace slot_of_uid o.o_uid i) ops;
    let preds = Array.make n 0 in
    Array.iteri
      (fun i oi ->
        Array.iteri
          (fun j oj ->
            if i <> j then
              match oj.o_ret with
              | Some r when r < oi.o_inv -> preds.(i) <- preds.(i) lor (1 lsl j)
              | Some _ | None -> ())
          ops)
      ops;
    let era_mask = Array.make n_eras 0 in
    let era_complete = Array.make n_eras 0 in
    Array.iteri
      (fun i o ->
        era_mask.(o.o_era) <- era_mask.(o.o_era) lor (1 lsl i);
        if o.o_ret <> None then
          era_complete.(o.o_era) <- era_complete.(o.o_era) lor (1 lsl i))
      ops;
    let full = (1 lsl n) - 1 in
    ignore full;
    (* Memoise failed states: (era, done-mask, canonical state). A "done" op
       is linearized or dropped; dropping is modelled by advancing the era
       with pending operations unaccounted — they can never be linearized
       once their era is over, which is exactly a drop. *)
    let seen = Hashtbl.create 4096 in
    let states = ref 0 in
    let budget_hit = ref false in
    let exception Found of int list in
    let rec dfs era done_mask state acc_rev =
      if !budget_hit then ()
      else begin
        let key =
          (era, done_mask, Onll_util.Codec.encode S.state_codec state)
        in
        if Hashtbl.mem seen key then ()
        else begin
          incr states;
          if !states > max_states then budget_hit := true
          else begin
            (if era = n_eras then begin
               (* All eras processed; every complete op must be done (eras
                  only advance when their complete ops are done). *)
               raise (Found (List.rev acc_rev))
             end);
            if era < n_eras then begin
              (* Option 1: advance the era (drop this era's still-pending
                 operations) if every complete op of the era is done. *)
              if era_complete.(era) land lnot done_mask = 0 then
                dfs (era + 1)
                  (done_mask lor era_mask.(era))
                  state acc_rev;
              (* Option 2: linearize a candidate from the current era. *)
              let remaining = era_mask.(era) land lnot done_mask in
              let rec try_slots m =
                if m <> 0 then begin
                  let i =
                    (* lowest set bit index *)
                    let b = m land -m in
                    let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
                    log2 b 0
                  in
                  let o = ops.(i) in
                  if preds.(i) land lnot done_mask = 0 then begin
                    let state', value =
                      match o.o_kind with
                      | Update u -> S.apply state u
                      | Read r -> (state, S.read state r)
                    in
                    let ok =
                      match o.o_value with
                      | None -> true  (* pending: any value is acceptable *)
                      | Some recorded -> S.equal_value value recorded
                    in
                    if ok then
                      dfs era (done_mask lor (1 lsl i)) state'
                        (o.o_uid :: acc_rev)
                  end;
                  try_slots (m land (m - 1))
                end
              in
              try_slots remaining
            end;
            Hashtbl.replace seen key ()
          end
        end
      end
    in
    match dfs 0 0 S.initial [] with
    | () ->
        if !budget_hit then Budget_exhausted
        else
          Violation
            (Printf.sprintf
               "no legal linearization of %d operations across %d era(s)" n
               n_eras)
    | exception Found witness -> Durably_linearizable witness

  (* {2 Buffered durable linearizability (E20)} *)

  type buffered_verdict =
    | Buffered_linearizable of { witness : int list; lost : int list }
    | Buffered_violation of string
    | Buffered_budget_exhausted

  let pp_buffered_verdict ppf = function
    | Buffered_linearizable { witness; lost } ->
        Format.fprintf ppf
          "buffered durably linearizable (witness: %s; lost: %s)"
          (String.concat " " (List.map string_of_int witness))
          (String.concat " " (List.map string_of_int lost))
    | Buffered_violation msg -> Format.fprintf ppf "VIOLATION: %s" msg
    | Buffered_budget_exhausted -> Format.pp_print_string ppf "budget exhausted"

  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go m 0

  (* The buffered dual of [check]: each era's linearization carries a
     nondeterministic {e cut}. Operations linearized after the cut really
     executed (their recorded values are still checked against the
     evolving volatile state) but did not survive the era's crash: the
     next era resumes from the state {e at} the cut, so the durable
     history is always a prefix of the era's linearization — an operation
     real-time-preceding a survivor can never itself be lost, because the
     survivor would have to be linearized after it and would then sit
     after the cut too. Per era, at most [staleness] {e completed
     updates} may fall after the cut (pending operations and reads are
     free: nothing was promised for them). [declared_lost] pins the cut
     placement to a recovery report: exactly those uids (no more, no
     fewer among completed updates) must be the lost set. *)
  let check_buffered ?(max_states = 2_000_000) ?declared_lost ~staleness
      events =
    if staleness < 0 then
      invalid_arg "Histcheck.check_buffered: negative staleness";
    let ops, n_eras = parse events in
    let n = List.length ops in
    if n > 62 then
      invalid_arg "Histcheck: more than 62 operations in one history";
    let ops = Array.of_list ops in
    let slot_of_uid = Hashtbl.create 16 in
    Array.iteri (fun i o -> Hashtbl.replace slot_of_uid o.o_uid i) ops;
    let preds = Array.make n 0 in
    Array.iteri
      (fun i oi ->
        Array.iteri
          (fun j oj ->
            if i <> j then
              match oj.o_ret with
              | Some r when r < oi.o_inv -> preds.(i) <- preds.(i) lor (1 lsl j)
              | Some _ | None -> ())
          ops)
      ops;
    let era_mask = Array.make n_eras 0 in
    let era_complete = Array.make n_eras 0 in
    let update_mask = ref 0 in
    Array.iteri
      (fun i o ->
        era_mask.(o.o_era) <- era_mask.(o.o_era) lor (1 lsl i);
        (match o.o_kind with
        | Update _ -> update_mask := !update_mask lor (1 lsl i)
        | Read _ -> ());
        if o.o_ret <> None then
          era_complete.(o.o_era) <- era_complete.(o.o_era) lor (1 lsl i))
      ops;
    let update_mask = !update_mask in
    let declared =
      match declared_lost with
      | None -> None
      | Some uids ->
          let m = Array.make n_eras 0 in
          List.iter
            (fun uid ->
              match Hashtbl.find_opt slot_of_uid uid with
              | Some i -> m.(ops.(i).o_era) <- m.(ops.(i).o_era) lor (1 lsl i)
              | None ->
                  invalid_arg
                    (Printf.sprintf
                       "Histcheck.check_buffered: declared-lost uid %d is \
                        not an operation of the history"
                       uid))
            uids;
          Some m
    in
    let seen = Hashtbl.create 4096 in
    let states = ref 0 in
    let budget_hit = ref false in
    let exception Found of int list * int list in
    (* [cut = None]: no cut placed yet this era (and [postcut] is 0).
       [cut = Some st]: the durable frontier is the state [st]; ops
       linearized since are in [postcut]. *)
    let rec dfs era done_mask state cut postcut acc_rev lost_rev =
      if !budget_hit then ()
      else begin
        let key =
          ( era,
            done_mask,
            postcut,
            (match cut with
            | None -> ""
            | Some st -> "|" ^ Onll_util.Codec.encode S.state_codec st),
            Onll_util.Codec.encode S.state_codec state )
        in
        if Hashtbl.mem seen key then ()
        else begin
          incr states;
          if !states > max_states then budget_hit := true
          else begin
            if era = n_eras then
              raise (Found (List.rev acc_rev, List.rev lost_rev));
            (* Option 1: crash — advance the era. Every completed op of
               the era must be linearized (pre- or post-cut); completed
               updates past the cut are the era's loss. *)
            if era_complete.(era) land lnot done_mask = 0 then begin
              let lost_here = postcut land update_mask land era_complete.(era) in
              let declared_ok =
                match declared with
                | None -> true
                | Some m ->
                    m.(era) land lnot postcut = 0
                    && lost_here land lnot m.(era) = 0
              in
              if popcount lost_here <= staleness && declared_ok then begin
                let state' = match cut with None -> state | Some cs -> cs in
                let lost_rev' =
                  let rec add i acc =
                    if i >= n then acc
                    else
                      add (i + 1)
                        (if lost_here land (1 lsl i) <> 0 then
                           ops.(i).o_uid :: acc
                         else acc)
                  in
                  add 0 lost_rev
                in
                dfs (era + 1)
                  (done_mask lor era_mask.(era))
                  state' None 0 acc_rev lost_rev'
              end
            end;
            (* Option 2: place the cut here (at most once per era). *)
            (match cut with
            | None -> dfs era done_mask state (Some state) 0 acc_rev lost_rev
            | Some _ -> ());
            (* Option 3: linearize a candidate from the current era. *)
            let remaining = era_mask.(era) land lnot done_mask in
            let rec try_slots m =
              if m <> 0 then begin
                let i =
                  let b = m land -m in
                  let rec log2 b acc =
                    if b = 1 then acc else log2 (b lsr 1) (acc + 1)
                  in
                  log2 b 0
                in
                let o = ops.(i) in
                let bit = 1 lsl i in
                let admissible =
                  preds.(i) land lnot done_mask = 0
                  &&
                  (* past the cut, a completed update is a loss: prune
                     over-budget and report-contradicting branches *)
                  match cut with
                  | None -> true
                  | Some _ ->
                      if bit land update_mask <> 0 && o.o_ret <> None then
                        popcount
                          (postcut land update_mask land era_complete.(era))
                        < staleness
                        && (match declared with
                           | None -> true
                           | Some dm -> dm.(era) land bit <> 0)
                      else true
                in
                if admissible then begin
                  let state', value =
                    match o.o_kind with
                    | Update u -> S.apply state u
                    | Read r -> (state, S.read state r)
                  in
                  let ok =
                    match o.o_value with
                    | None -> true
                    | Some recorded -> S.equal_value value recorded
                  in
                  if ok then
                    dfs era (done_mask lor bit) state' cut
                      (match cut with None -> 0 | Some _ -> postcut lor bit)
                      (o.o_uid :: acc_rev) lost_rev
                end;
                try_slots (m land (m - 1))
              end
            in
            try_slots remaining;
            Hashtbl.replace seen key ()
          end
        end
      end
    in
    match dfs 0 0 S.initial None 0 [] [] with
    | () ->
        if !budget_hit then Buffered_budget_exhausted
        else
          Buffered_violation
            (Printf.sprintf
               "no buffered linearization of %d operations across %d era(s) \
                within staleness %d"
               n n_eras staleness)
    | exception Found (witness, lost) ->
        Buffered_linearizable { witness; lost }

  let validate_witness events witness =
    let ops, _ = parse events in
    let by_uid = Hashtbl.create 16 in
    List.iter (fun o -> Hashtbl.replace by_uid o.o_uid o) ops;
    let err fmt = Format.kasprintf (fun s -> Error s) fmt in
    let rec dedup seen = function
      | [] -> Ok ()
      | u :: rest ->
          if List.mem u seen then err "uid %d appears twice in the witness" u
          else if not (Hashtbl.mem by_uid u) then
            err "uid %d is not an operation of the history" u
          else dedup (u :: seen) rest
    in
    match dedup [] witness with
    | Error _ as e -> e
    | Ok () ->
        let complete_missing =
          List.filter
            (fun o -> o.o_ret <> None && not (List.mem o.o_uid witness))
            ops
        in
        if complete_missing <> [] then
          err "completed operation #%d missing from the witness"
            (List.hd complete_missing).o_uid
        else begin
          (* eras must be non-decreasing along the witness *)
          let rec eras last = function
            | [] -> Ok ()
            | u :: rest ->
                let o = Hashtbl.find by_uid u in
                if o.o_era < last then
                  err "uid %d linearized after a later era" u
                else eras o.o_era rest
          in
          match eras 0 witness with
          | Error _ as e -> e
          | Ok () ->
              (* real-time precedence among included operations *)
              let pos u =
                let rec go i = function
                  | [] -> -1
                  | x :: r -> if x = u then i else go (i + 1) r
                in
                go 0 witness
              in
              let precedence_ok =
                List.for_all
                  (fun a ->
                    List.for_all
                      (fun b ->
                        match a.o_ret with
                        | Some r
                          when r < b.o_inv
                               && List.mem a.o_uid witness
                               && List.mem b.o_uid witness ->
                            pos a.o_uid < pos b.o_uid
                        | Some _ | None -> true)
                      ops)
                  ops
              in
              if not precedence_ok then Error "witness violates precedence"
              else begin
                (* replay *)
                let rec replay st = function
                  | [] -> Ok ()
                  | u :: rest -> (
                      let o = Hashtbl.find by_uid u in
                      let st', v =
                        match o.o_kind with
                        | Update op -> S.apply st op
                        | Read r -> (st, S.read st r)
                      in
                      match o.o_value with
                      | Some recorded when not (S.equal_value v recorded) ->
                          err "uid %d replays to a different value" u
                      | Some _ | None -> replay st' rest)
                in
                replay S.initial witness
              end
        end
end
