(* The arithmetic runs on native [int]s, not [Int32.t]: every [Int32]
   operation allocates a box, which for a per-byte loop means ~15 words
   per input byte — the log's CRC frame would dominate the allocation
   rate of an update. A CRC-32 fits in 32 bits, so on a 64-bit host the
   whole computation stays unboxed; only the result is boxed, once. *)

let mask32 = 0xFFFFFFFF

let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
         else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let bytes ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes: range out of bounds";
  let t = Lazy.force table in
  let crc = ref (Int32.to_int init land mask32 lxor mask32) in
  for i = pos to pos + len - 1 do
    let c = !crc in
    crc :=
      Array.unsafe_get t ((c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
      lxor (c lsr 8)
  done;
  Int32.of_int (!crc lxor mask32)

let string ?init s =
  bytes ?init (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let int64 ?init x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 x;
  bytes ?init b ~pos:0 ~len:8
