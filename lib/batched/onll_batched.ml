(** Group-commit ONLL (see onll_batched.mli). *)

open Onll_core

module Make (M : Onll_machine.Machine_sig.S) (S : Spec.S) = struct
  module L = Onll_plog.Plog.Make (M)

  type state = S.state
  type update_op = S.update_op
  type read_op = S.read_op
  type value = S.value

  type envelope = { e_proc : int; e_seq : int; e_op : S.update_op }

  let envelope_id e = { Onll.id_proc = e.e_proc; id_seq = e.e_seq }
  let envelope_op e = e.e_op

  (* Materialised state with per-process sequence floors, exactly as the
     core construction: floors keep detectability across compaction. *)
  type istate = { st : S.state; floors : int array }

  let initial_istate () =
    { st = S.initial; floors = Array.make M.max_processes 0 }

  let apply_env is env =
    let st, v = S.apply is.st env.e_op in
    let floors =
      if env.e_seq >= is.floors.(env.e_proc) then begin
        let f = Array.copy is.floors in
        f.(env.e_proc) <- env.e_seq + 1;
        f
      end
      else is.floors
    in
    ({ st; floors }, v)

  (* The shared log's records. [Batch] is the group commit: envelopes in
     linearization order, with contiguous execution indices ascending from
     [start_idx]. One CRC frame per batch makes a torn batch
     all-or-nothing on recovery. *)
  type record =
    | Batch of { start_idx : int; envs : envelope list }
    | Checkpoint of { upto_idx : int; state : istate }

  let envelope_codec =
    let open Onll_util.Codec in
    map
      (fun (e_proc, e_seq, e_op) -> { e_proc; e_seq; e_op })
      (fun { e_proc; e_seq; e_op } -> (e_proc, e_seq, e_op))
      (triple int int S.update_codec)

  let istate_codec =
    let open Onll_util.Codec in
    map
      (fun (st, floors) -> { st; floors })
      (fun { st; floors } -> (st, floors))
      (pair S.state_codec (array int))

  let record_codec =
    let open Onll_util.Codec in
    let batch_c = pair int (list envelope_codec) in
    let ckpt_c = pair int istate_codec in
    tagged
      (function
        | Batch { start_idx; envs } -> (0, encode batch_c (start_idx, envs))
        | Checkpoint { upto_idx; state } ->
            (1, encode ckpt_c (upto_idx, state)))
      (fun tag body ->
        match tag with
        | 0 ->
            let start_idx, envs = decode batch_c body in
            Batch { start_idx; envs }
        | 1 ->
            let upto_idx, state = decode ckpt_c body in
            Checkpoint { upto_idx; state }
        | n -> raise (Decode_error (Printf.sprintf "record: bad tag %d" n)))

  type slot =
    | Empty
    | Req of envelope * string
        (** announced, not yet durable; the submitter pre-encodes its
            envelope so the serialisation work runs in parallel and the
            leader's critical section is a concatenation *)
    | Done of { d_seq : int; d_value : S.value }
        (** result for the announcer's operation [d_seq]; published only
            after the batch's fence *)

  type t = {
    lock : bool M.Tvar.t;  (** leader election: CAS false->true *)
    slots : slot M.Tvar.t array;  (** per-process announce slots *)
    log : L.t;  (** ONE shared log for all processes *)
    mirror : istate M.Tvar.t;
        (** state at the durable watermark; published only after a batch's
            fence, so readers never observe unfenced updates *)
    durable : int M.Tvar.t;
        (** watermark: highest execution index whose batch fence completed *)
    seqs : int array;  (** next per-process sequence number; owner-only *)
    mutable next_idx : int;  (** next execution index; owned by the leader *)
    mutable base : int * istate;  (** deepest materialised point *)
    mutable hist : (int * envelope) list;
        (** applied envelopes above [base], newest first; leader-owned *)
    applied : (Onll.op_id, int) Hashtbl.t;
        (** id -> execution index for every durable operation above the
            base floors; leader-owned writes *)
    recovered : (Onll.op_id, int) Hashtbl.t;  (** rebuilt by recovery *)
    covers : int Queue.t;
        (** coverage key of every record currently in the log, in log
            order (batch: last execution index; checkpoint: [upto_idx +
            1]) — a record is droppable under a checkpoint at [upto] iff
            its key is [<= upto], and keys are non-decreasing, so the
            droppable prefix pops off the front without decoding the log.
            Leader-owned (mutated under the lock). *)
    mutable covers_valid : bool;
        (** false after a recovery that saw undecodable entries: the
            account no longer matches the log record-for-record, so the
            next checkpoint falls back to decoding *)
    mutable ckpt_hint : int;
        (** last observed checkpoint-record footprint, in bytes — the
            emergency-compaction trigger in [append_record] needs a size
            estimate {e before} paying the full state encode *)
    mutable batches : int;  (** batch fences paid since build/recovery *)
    mutable batched_ops : int;  (** updates those fences covered *)
    mutable max_occupancy : int;  (** largest batch observed *)
    mutable degraded : bool;  (** sticky admitted-loss flag *)
    ostats : Onll_obs.Opstats.t;
    c_batch_fences : Onll_obs.Metrics.counter;  (** ["fences.batched"] *)
    h_occupancy : Onll_obs.Metrics.histogram;  (** ["batch.occupancy"] *)
  }

  let instances = ref 0

  let make (cfg : Onll.Config.t) =
    let n = !instances in
    incr instances;
    let sink = cfg.Onll.Config.sink in
    let registry = Onll_obs.Sink.registry sink in
    {
      lock = M.Tvar.make false;
      slots = Array.init M.max_processes (fun _ -> M.Tvar.make Empty);
      log =
        L.create ~sink ~replicas:cfg.Onll.Config.replicas
          ~name:
            (Printf.sprintf "%s%s.%d.gc.plog" S.name
               cfg.Onll.Config.region_suffix n)
          ~capacity:cfg.Onll.Config.log_capacity ();
      mirror = M.Tvar.make (initial_istate ());
      durable = M.Tvar.make 0;
      seqs = Array.make M.max_processes 0;
      next_idx = 1;
      base = (0, initial_istate ());
      hist = [];
      applied = Hashtbl.create 64;
      recovered = Hashtbl.create 64;
      covers = Queue.create ();
      covers_valid = true;
      ckpt_hint = 1024;
      batches = 0;
      batched_ops = 0;
      max_occupancy = 0;
      degraded = false;
      ostats = Onll_obs.Opstats.make sink;
      c_batch_fences = Onll_obs.Metrics.counter registry "fences.batched";
      h_occupancy = Onll_obs.Metrics.histogram registry "batch.occupancy";
    }

  let sink t = Onll_obs.Opstats.sink t.ostats

  module A = Attribution.Make (M)

  let attributed t record f = A.attributed t.ostats record f

  (* Test-and-test-and-set: spinners read the lock (shared cache state)
     and only attempt the CAS when it was observed free, so waiters do
     not steal the line from the leader on every pause. *)
  let try_lock t =
    (not (M.Tvar.get t.lock))
    && M.Tvar.cas t.lock ~expected:false ~desired:true

  let unlock t = M.Tvar.set t.lock false

  let decode_entries log =
    List.map (Onll_util.Codec.decode record_codec) (L.entries log)

  let cover_key = function
    | Batch { start_idx; envs } -> start_idx + List.length envs - 1
    | Checkpoint { upto_idx; _ } -> upto_idx + 1

  (* {2 Checkpointing and log space (must hold the lock)} *)

  let entry_overhead = 16 (* plog [len][crc] framing *)

  let checkpoint_body t =
    let upto = M.Tvar.get t.durable in
    let state = M.Tvar.get t.mirror in
    let payload =
      Onll_util.Codec.encode record_codec (Checkpoint { upto_idx = upto; state })
    in
    t.ckpt_hint <- String.length payload + entry_overhead;
    (match L.try_append t.log payload with
    | Ok () -> ()
    | Error `Full -> (
        L.relocate t.log;
        match L.try_append t.log payload with
        | Ok () -> ()
        | Error `Full -> raise (Onll.Log_full (L.name t.log))));
    if t.covers_valid then Queue.push (upto + 1) t.covers
    else begin
      (* a recovery saw entries it could not account for: rebuild the
         account by decoding once (the new checkpoint is in the log
         already, so a full rebuild covers it too) *)
      Queue.clear t.covers;
      let records = decode_entries t.log in
      List.iter (fun r -> Queue.push (cover_key r) t.covers) records;
      t.covers_valid <- true
    end;
    let droppable =
      let n = ref 0 in
      while (not (Queue.is_empty t.covers)) && Queue.peek t.covers <= upto do
        ignore (Queue.pop t.covers);
        incr n
      done;
      !n
    in
    L.set_head t.log droppable;
    t.base <- (upto, state);
    t.hist <- [];
    if Onll_obs.Opstats.active t.ostats then
      Onll_obs.Sink.emit
        (Onll_obs.Opstats.sink t.ostats)
        ~proc:(M.self ())
        (Onll_obs.Event.Checkpoint { upto });
    upto

  (* Same headroom discipline as the core construction — compact while
     the checkpoint record that enables compaction still fits — except
     the trigger budgets for the checkpoint's own footprint up front
     (twice the last observed size, for state growth since), not just
     the incoming record's: a batched log serves every process, so it
     can reach the capacity wall between periodic checkpoints, and an
     emergency checkpoint that no longer fits would strand the log. The
     expensive full-state encode still only happens near the edge. *)
  let ckpt_payload t =
    Onll_util.Codec.encode record_codec
      (Checkpoint
         { upto_idx = M.Tvar.get t.durable; state = M.Tvar.get t.mirror })

  let append_record t payload =
    let need = String.length payload + entry_overhead in
    (if L.free_bytes t.log < need + (2 * t.ckpt_hint) + 64 then
       let ckpt = ckpt_payload t in
       t.ckpt_hint <- String.length ckpt + entry_overhead;
       if
         L.free_bytes t.log < need + String.length ckpt + entry_overhead
       then begin
         (try ignore (checkpoint_body t) with Onll.Log_full _ -> ());
         L.relocate t.log
       end);
    match L.try_append t.log payload with
    | Ok () -> ()
    | Error `Full -> (
        (try ignore (checkpoint_body t) with Onll.Log_full _ -> ());
        L.relocate t.log;
        match L.try_append t.log payload with
        | Ok () -> ()
        | Error `Full -> raise (Onll.Log_full (L.name t.log)))

  (* {2 The group commit (must hold the lock)} *)

  (* Assemble a [Batch] record from the submitters' pre-encoded envelopes
     — byte-identical to [encode record_codec (Batch { start_idx; envs })]
     ([tagged] frames the body as an [int] tag plus a length-prefixed
     [string]; the body is [pair int (list envelope_codec)]), but the
     leader's share of the serialisation is a concatenation. *)
  let encode_batch ~start_idx pre =
    let count, body_len =
      List.fold_left
        (fun (n, l) s -> (n + 1, l + String.length s))
        (0, 16) pre
    in
    let b = Buffer.create (body_len + 16) in
    Buffer.add_int64_le b 0L (* tag: Batch *);
    Buffer.add_int64_le b (Int64.of_int body_len);
    Buffer.add_int64_le b (Int64.of_int start_idx);
    Buffer.add_int64_le b (Int64.of_int count);
    List.iter (Buffer.add_string b) pre;
    Buffer.contents b

  let combine t ~proc =
    let requests = ref [] in
    Array.iter
      (fun slot ->
        match M.Tvar.get slot with
        | Req (env, bytes) -> requests := (env, bytes) :: !requests
        | Empty | Done _ -> ())
      t.slots;
    let envs = List.rev !requests in
    if envs <> [] then begin
      let k = List.length envs in
      let start_idx = t.next_idx in
      let payload = encode_batch ~start_idx (List.map snd envs) in
      (* One persistent fence covers the whole batch (and, with replicated
         logs, every replica's copy of it — Plog drains them together). *)
      append_record t payload;
      Queue.push (start_idx + k - 1) t.covers;
      t.batches <- t.batches + 1;
      t.batched_ops <- t.batched_ops + k;
      if k > t.max_occupancy then t.max_occupancy <- k;
      if Onll_obs.Opstats.active t.ostats then begin
        Onll_obs.Metrics.incr t.c_batch_fences;
        Onll_obs.Metrics.observe t.h_occupancy k;
        if k > 1 then
          Onll_obs.Sink.emit
            (Onll_obs.Opstats.sink t.ostats)
            ~proc
            (Onll_obs.Event.Help { helped = k - 1 })
      end;
      t.next_idx <- start_idx + k;
      (* The batch is durable: advance the watermark, apply, publish. A
         waiter observing its Done therefore knows its update's fence
         completed — it never acknowledges an unfenced update. The floors
         array is copied once per batch, not once per operation. *)
      let base_is = M.Tvar.get t.mirror in
      let floors = Array.copy base_is.floors in
      let st = ref base_is.st in
      let results, _ =
        List.fold_left
          (fun (acc, idx) (env, _) ->
            let st', v = S.apply !st env.e_op in
            st := st';
            if env.e_seq >= floors.(env.e_proc) then
              floors.(env.e_proc) <- env.e_seq + 1;
            Hashtbl.replace t.applied (envelope_id env) idx;
            t.hist <- (idx, env) :: t.hist;
            ((env, v) :: acc, idx + 1))
          ([], start_idx) envs
      in
      M.Tvar.set t.durable (start_idx + k - 1);
      M.Tvar.set t.mirror { st = !st; floors };
      List.iter
        (fun (env, v) ->
          M.Tvar.set t.slots.(env.e_proc)
            (Done { d_seq = env.e_seq; d_value = v }))
        (List.rev results)
    end

  (* {2 Operations} *)

  let update_env t env =
    attributed t Onll_obs.Opstats.update_done (fun () ->
        let p = env.e_proc in
        let bytes = Onll_util.Codec.encode envelope_codec env in
        M.Tvar.set t.slots.(p) (Req (env, bytes));
        (* Combining window: let concurrent submitters announce before
           anyone pays the batch's fence. Solo (and on the adversarial
           single-process schedule) the yield returns immediately and the
           batch degenerates to one update — exactly 1 pf, the Thm 6.3
           floor. *)
        M.yield ();
        let rec wait () =
          match M.Tvar.get t.slots.(p) with
          | Done { d_seq; d_value } when d_seq = env.e_seq ->
              M.Tvar.set t.slots.(p) Empty;
              d_value
          | Done _ | Empty | Req _ ->
              if try_lock t then begin
                combine t ~proc:p;
                unlock t;
                wait ()
              end
              else begin
                (* the lock holder is combining on our behalf (or about
                   to); surrender the timeslice it may need *)
                M.yield ();
                wait ()
              end
        in
        let v = wait () in
        M.return_point ();
        v)

  let next_id t =
    let p = M.self () in
    let seq = t.seqs.(p) in
    t.seqs.(p) <- seq + 1;
    { Onll.id_proc = p; id_seq = seq }

  let update_with_id t op =
    let id = next_id t in
    let v =
      update_env t
        { e_proc = id.Onll.id_proc; e_seq = id.Onll.id_seq; e_op = op }
    in
    (id, v)

  let update t op = snd (update_with_id t op)

  let update_detectable t ~seq op =
    let p = M.self () in
    if seq < t.seqs.(p) then
      invalid_arg "Onll_batched.update_detectable: sequence number reused";
    t.seqs.(p) <- seq + 1;
    update_env t { e_proc = p; e_seq = seq; e_op = op }

  let read t rop =
    attributed t Onll_obs.Opstats.read_done (fun () ->
        let v = S.read (M.Tvar.get t.mirror).st rop in
        M.return_point ();
        v)

  (* {2 Recovery} *)

  let decode_entries_tolerant log failures =
    List.filter_map
      (fun e ->
        match Onll_util.Codec.decode record_codec e with
        | r -> Some r
        | exception _ ->
            incr failures;
            None)
      (L.entries log)

  (* One routine, mirroring the core construction: salvage the shared log,
     adopt the deepest checkpoint plus the longest contiguous run of
     batches above it, report everything that could not be adopted. A
     batch whose fence did not complete is a torn tail record: its CRC
     frame fails as a whole, so the batch vanishes all-or-nothing — no
     operation of it was ever acknowledged, so nothing acknowledged is
     lost. *)
  let recover_core t ~hardened =
    let salvage =
      if hardened then [ (L.name t.log, L.recover t.log) ]
      else begin
        L.recover_unhardened t.log;
        []
      end
    in
    let decode_failures = ref 0 in
    let records = decode_entries_tolerant t.log decode_failures in
    let base_idx, base_state =
      List.fold_left
        (fun ((bi, _) as best) r ->
          match r with
          | Checkpoint { upto_idx; state } when upto_idx > bi ->
              (upto_idx, state)
          | Checkpoint _ | Batch _ -> best)
        (0, initial_istate ())
        records
    in
    let by_idx = Hashtbl.create 64 in
    let disagreements = ref [] in
    List.iter
      (function
        | Checkpoint _ -> ()
        | Batch { start_idx; envs } ->
            List.iteri
              (fun k env ->
                let idx = start_idx + k in
                match Hashtbl.find_opt by_idx idx with
                | None -> Hashtbl.replace by_idx idx env
                | Some prior ->
                    if prior.e_proc <> env.e_proc || prior.e_seq <> env.e_seq
                    then disagreements := idx :: !disagreements)
              envs)
      records;
    let max_idx = Hashtbl.fold (fun i _ acc -> max i acc) by_idx base_idx in
    let gaps = ref [] in
    for idx = max_idx downto base_idx + 1 do
      if not (Hashtbl.mem by_idx idx) then gaps := idx :: !gaps
    done;
    let gaps = !gaps in
    let stop_idx = match gaps with [] -> max_idx | g :: _ -> g - 1 in
    Hashtbl.reset t.recovered;
    Hashtbl.reset t.applied;
    Array.blit base_state.floors 0 t.seqs 0 M.max_processes;
    (* Bump sequence allocation past every id seen — including ids above a
       gap that cannot be replayed — so no post-recovery update can reuse
       a pre-crash identity. *)
    Hashtbl.iter
      (fun _ env ->
        if env.e_seq >= t.seqs.(env.e_proc) then
          t.seqs.(env.e_proc) <- env.e_seq + 1)
      by_idx;
    let state = ref base_state in
    let hist = ref [] in
    for idx = base_idx + 1 to stop_idx do
      let env = Hashtbl.find by_idx idx in
      state := fst (apply_env !state env);
      hist := (idx, env) :: !hist;
      Hashtbl.replace t.applied (envelope_id env) idx;
      Hashtbl.replace t.recovered (envelope_id env) idx
    done;
    let dropped = ref [] in
    for idx = max_idx downto stop_idx + 1 do
      match Hashtbl.find_opt by_idx idx with
      | Some env -> dropped := envelope_id env :: !dropped
      | None -> ()
    done;
    t.base <- (base_idx, base_state);
    t.hist <- !hist;
    t.next_idx <- stop_idx + 1;
    Queue.clear t.covers;
    List.iter (fun r -> Queue.push (cover_key r) t.covers) records;
    (* entries that survived the frame CRC but failed to decode are still
       physically in the log; the account above misses them, so force the
       next checkpoint to re-derive it by decoding *)
    t.covers_valid <- !decode_failures = 0;
    M.Tvar.set t.mirror !state;
    M.Tvar.set t.durable stop_idx;
    M.Tvar.set t.lock false;
    Array.iter (fun s -> M.Tvar.set s Empty) t.slots;
    t.batches <- 0;
    t.batched_ops <- 0;
    if Onll_obs.Opstats.active t.ostats then
      Onll_obs.Sink.emit
        (Onll_obs.Opstats.sink t.ostats)
        ~proc:(M.self ())
        (Onll_obs.Event.Recovery { ops = stop_idx - base_idx });
    let report =
      {
        Onll.Recovery_report.recovered_ops = stop_idx - base_idx;
        base_idx;
        gap_indices = gaps;
        dropped = !dropped;
        disagreements = List.sort_uniq compare !disagreements;
        decode_failures = !decode_failures;
        salvage;
        lost_acked = [];
      }
    in
    if hardened && Onll.Recovery_report.detected_loss report then
      t.degraded <- true;
    report

  let recover_report t = recover_core t ~hardened:true

  let recover t =
    let r = recover_core t ~hardened:true in
    match
      (r.Onll.Recovery_report.disagreements, r.Onll.Recovery_report.gap_indices)
    with
    | d :: _, _ ->
        raise
          (Onll.Recovery_corrupt
             (Printf.sprintf "logs disagree on operation at index %d" d))
    | [], g :: _ ->
        raise
          (Onll.Recovery_corrupt
             (Printf.sprintf "operation at index %d missing from all logs" g))
    | [], [] ->
        if r.Onll.Recovery_report.decode_failures > 0 then
          raise (Onll.Recovery_corrupt "undecodable log entry")

  let recover_unhardened t = ignore (recover_core t ~hardened:false)

  let scrub t =
    attributed t Onll_obs.Opstats.scrub_done (fun () ->
        let r = L.scrub t.log in
        if r.Onll_plog.Plog.unrepairable_spans > 0 then begin
          t.degraded <- true;
          (* an unrepairable span can change what the log decodes to;
             stop trusting the record account *)
          t.covers_valid <- false
        end;
        r)

  let degraded t = t.degraded

  (* {2 Detectable execution} *)

  let recovered_ops t =
    Hashtbl.fold (fun id idx acc -> (id, idx) :: acc) t.recovered []
    |> List.sort (fun (_, a) (_, b) -> compare a b)

  let was_linearized t id =
    Hashtbl.mem t.applied id
    ||
    let _, base = t.base in
    id.Onll.id_seq < base.floors.(id.Onll.id_proc)

  (* {2 §8: checkpointing and compaction} *)

  let rec with_lock t f =
    if try_lock t then
      Fun.protect ~finally:(fun () -> unlock t) f
    else begin
      M.yield ();
      with_lock t f
    end

  let checkpoint t =
    attributed t Onll_obs.Opstats.checkpoint_done (fun () ->
        with_lock t (fun () -> checkpoint_body t))

  let prune _t ~below:_ =
    raise
      (Trace_intf.Unsupported
         "Onll_batched: the batched trace prunes via checkpoint only")

  (* {2 Introspection} *)

  let trace_nodes t =
    let base_idx, _ = t.base in
    (base_idx, true, None)
    :: List.rev_map (fun (idx, env) -> (idx, true, Some env)) t.hist

  let trace_base t =
    let i, is = t.base in
    (i, is.st)

  let current_state t = (M.Tvar.get t.mirror).st

  let snapshot t =
    let ops_per_entry =
      decode_entries t.log
      |> List.map (function
           | Batch { envs; _ } -> List.length envs
           | Checkpoint _ -> 0)
    in
    {
      Onll.Snapshot.latest_available_idx = M.Tvar.get t.durable;
      max_fuzzy_window = t.max_occupancy;
      degraded = t.degraded;
      logs =
        [
          {
            Onll.Snapshot.log_name = L.name t.log;
            live_bytes = L.live_bytes t.log;
            used_bytes = L.used_bytes t.log;
            entry_count = List.length ops_per_entry;
            ops_per_entry;
          };
        ];
    }

  let batch_stats t = (t.batches, t.batched_ops)
  let durable_watermark t = M.Tvar.get t.durable
end
