(** Group-commit ONLL (E16): fence batching behind the standard
    construction surface.

    Theorem 5.1 charges every update one persistent fence — {e per
    process}. §8's closing discussion (and the flat-combining literature
    it cites) observes that {e concurrent} updates need not each pay
    their own: one process can order many processes' updates into a
    single batch, append the batch to the log and make the whole batch
    durable under a {e single} persistent fence, amortising the fence
    across every update it covers.

    {!Make} is that construction, hardened to the same standard as the
    core one:

    - {b Announce}: each process publishes its operation (with its
      detectable [(process, sequence)] identity) in a per-process slot.
    - {b Combine}: whoever wins a CAS lock becomes the {e leader},
      collects every announced operation into one batch with contiguous
      execution indices, appends one [Batch] record to the {e shared}
      persistent log and issues the batch's one fence.
    - {b Publish}: only after the fence does the leader advance the
      durable watermark, apply the batch to the in-memory state and
      publish each waiter's result. A waiter therefore {e never} returns
      before its operation is durable — durable linearizability is
      preserved, and a crash between append and fence loses the whole
      tail batch cleanly (the record's CRC frame makes a torn batch
      all-or-nothing; no operation in it was ever acknowledged).

    Detectability is identical to the unbatched construction:
    {!Make.update_detectable} rejects sequence reuse before any effect,
    and {!Make.was_linearized} answers across crashes from the recovered
    batches plus the per-process sequence floors carried by checkpoints.

    Costs: with [k] concurrent submitters a batch of size [k] costs one
    fence, so the amortised price is [1/k] pf/update — {e but} the
    Theorem 6.3 worst case is still tight: a solo process (or any
    schedule that forces every update to lead its own batch of one)
    degenerates to exactly 1 pf/update, and the construction is
    lock-based, not lock-free — a stalled leader stalls the world. E16
    measures both sides; ["fences.batched"] counts batch fences and
    ["batch.occupancy"] histograms how many updates each fence covered.

    Composition: the shared log honours
    {!Onll_core.Onll.Config.t.replicas} (batched∘mirrored: all replica
    appends drain under the batch's one fence) and
    {!Onll_core.Onll.Config.t.region_suffix} (so shard layers can
    qualify it), and the module satisfies the full
    {!Onll_core.Onll.CONSTRUCTION} signature — sessions
    ({!Onll_session.Make.Over}) and shards
    ({!Onll_sharded.Make_over}) stack on top unchanged. *)

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  include
    Onll_core.Onll.CONSTRUCTION
      with type state = S.state
       and type update_op = S.update_op
       and type read_op = S.read_op
       and type value = S.value

  val batch_stats : t -> int * int
  (** (batches appended, updates covered) since construction or last
      recovery — [fst] is the number of persistent fences the update
      path has paid, [snd / fst] the mean occupancy. *)

  val durable_watermark : t -> int
  (** The published watermark: highest execution index whose batch fence
      has completed (0 before any batch). Reads and waiter returns only
      ever observe state at or below it. *)
end
