(** Cross-shard atomic transactions over sharded ONLL (E19): one
    coordinator fence per transaction instead of 2PC's participants + 1.

    {!Onll_sharded} (E14) routes every update to exactly one shard, so a
    multi-key operation — a kv multi-put, a ledger transfer between
    accounts on different shards — was impossible. Classic two-phase
    commit would make it possible at a fence {e per participant} (each
    prepare force-write) plus a decision fence. ONLL's order-now /
    linearize-later split does better: the whole transaction becomes
    {e one} CRC-framed commit record, appended and fenced {e once} in a
    dedicated per-process coordinator log region, and the per-shard
    sub-operations are applied deterministically around it.

    A transaction [txn t [op1; op2; ...]] runs the update stages across
    its participant shards:

    + {b stage} (order): each sub-operation is inserted into its shard's
      execution trace — {e not yet available}, nothing written durably —
      tagged with the transaction's encoded commit payload. The tag is
      what makes concurrent helping safe: if another process's update
      persists a staged sub-operation (Listing 3's fuzzy window), the
      payload rides along in that fenced record, so the {e whole}
      transaction becomes durably committed the instant any part of it
      does. A staged sub-operation can never be durable without its
      transaction.
    + {b commit}: the commit record — transaction id, every
      sub-operation with its identity and staged execution index — is
      appended to the coordinator's own log region and fenced. {e This
      is the transaction's single persistent fence and its durability
      point.}
    + {b finish} (linearize): each staged node is set available and its
      return value computed from the trace prefix. No further fences.

    Recovery composes: coordinator logs are salvaged and decoded first
    (the {e sweep} precedes any new submission); each shard then recovers
    with the committed transactions as an oracle
    ({!Onll_core.Onll.TXN_CAPABLE.recover_txn}) so a sub-operation whose
    only durable copy is the commit record is re-adopted in place; the
    payloads found riding in shard logs add the helper-committed
    transactions; finally any committed sub-operation still missing is
    idempotently re-applied ({e exactly-once}, keyed by its per-shard
    identity) and durably re-logged. A crash at any point therefore
    leaves no partial transaction visible: either the commit record (or a
    helper's record) survived — recovery replays the transaction in
    full — or neither did and no sub-operation was ever durable.

    Reads are the sharded layer's: shard-routed reads are linearizable
    per shard, global reads are fence-free merge reads. Cross-shard
    atomicity here is {e crash} atomicity (all-or-nothing durability +
    deterministic replay), not snapshot isolation: a concurrent reader
    may observe one shard's sub-operation before a sibling shard's — the
    same per-shard relaxation {!Onll_sharded} merge reads already have. *)

(** A transaction's identity: the coordinating process and a per-process
    transaction sequence number (chosen by the client with
    {!Make.txn_detectable}, or allocated automatically). Distinct from —
    and carried alongside — the per-shard {!Onll_core.Onll.op_id} each
    sub-operation bears. *)
type txn_id = { txn_proc : int; txn_seq : int }

val pp_txn_id : Format.formatter -> txn_id -> unit

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) : sig
  module Sh :
    Onll_sharded.SHARDED
      with type Shard.state = S.state
       and type Shard.update_op = S.update_op
       and type Shard.read_op = S.read_op
       and type Shard.value = S.value
  (** The underlying sharded object — exposed so tests and harnesses can
      reach shards and their logs directly. *)

  type t
  (** A transactional sharded object: an {!Sh.t} plus one coordinator log
      per process and the volatile committed-transaction table. *)

  val make : shards:int -> Onll_core.Onll.Config.t -> t
  (** [make ~shards cfg] builds the sharded object exactly as
      {!Onll_sharded.SHARDED.make}, plus one coordinator log per process
      (regions ["<spec><suffix>.<n>.txncoord.<p>"], [cfg.log_capacity]
      bytes, mirrored over [cfg.replicas] like every other region — so
      [--mirrored] composes). *)

  val create :
    ?shards:int -> ?log_capacity:int -> ?replicas:int -> unit -> t
  (** [make] with {!Onll_core.Onll.Config.default} (4 shards). *)

  val shards : t -> int
  val sink : t -> Onll_obs.Sink.t

  val sharded : t -> Sh.t
  (** The underlying sharded object (shared state — single updates
      through it are visible to transactions and vice versa). *)

  val participants : t -> S.update_op list -> int list
  (** The distinct shards this operation list touches, ascending. *)

  (** {1 Operations} *)

  val txn : t -> S.update_op list -> S.value list
  (** Submit the operation list as one atomic transaction; returns the
      sub-operation values in program order. Exactly {b one} persistent
      fence — the coordinator commit append — whatever the participant
      count. A {e single-operation} transaction degenerates to a plain
      sharded update: no staging, no coordinator record, the same one
      fence (counted under ["ops.update"], with ["txn.fast_path"]
      bumped); an empty list returns [[]] at no cost. Multi-operation
      transactions are counted under ["ops.txn"]/["fences.txn"]
      ({!Onll_obs.Opstats.txn_done}) and emit {!Onll_obs.Event.Txn}.
      @raise Onll_core.Onll.Log_full if the coordinator log cannot fit
      the commit record even after {!compact}. *)

  val txn_detectable : t -> seq:int -> S.update_op list -> S.value list
  (** Like {!txn} with a client-chosen transaction sequence number, so
      the client can ask {!txn_was_committed} about this exact submission
      after a crash even though the call never returned. Requires at
      least two operations (a single-operation submission has no
      coordinator record to detect — use the sharded
      [update_detectable]); sequence reuse is rejected before any
      effect, as in {!Onll_core.Onll.CONSTRUCTION.update_detectable}.
      @raise Invalid_argument on reuse or fewer than two operations. *)

  val update : t -> S.update_op -> S.value
  (** A plain single-shard update through the sharded router; one fence. *)

  val read : t -> S.read_op -> S.value
  (** The sharded read path: shard-routed or merge, fence-free. *)

  (** {1 Detectable commitment} *)

  val txn_was_committed : t -> txn_id -> bool
  (** After recovery: did this transaction commit before the crash? True
      iff its commit record (or a helper-carried payload) survived — in
      which case {e every} sub-operation is guaranteed applied. Answered
      from the volatile committed table recovery rebuilds; for ids
      submitted in the current era it answers from the live table. *)

  val committed_txns : t -> txn_id list
  (** Every transaction the committed table knows, ascending. Entries for
      fully checkpoint-covered transactions disappear once coordinator
      truncation ({!compact}) drops their records and a recovery rebuilds
      the table. *)

  (** {1 Crash recovery} *)

  val recover_report : t -> Onll_core.Onll.Recovery_report.t
  (** Hardened composed recovery, in coordinator-sweep-before-submission
      order: salvage + decode the coordinator logs (committed set C1);
      recover each shard with C1's staged indices as oracle; union in the
      helper-committed payloads shard logs carried (C2); rebuild the
      committed table and bump transaction sequence allocation; then
      sweep — idempotently re-apply (and durably re-log, one fenced
      append per affected shard) every committed sub-operation recovery
      could not place. The report composes the per-shard reports as
      {!Onll_sharded.SHARDED.recover_report} does, prepends the
      coordinator logs' salvage entries, counts undecodable commit
      records as [decode_failures] and swept re-applies in
      [recovered_ops]. Idempotent: a second run (or a crash-interrupted
      run re-run) adopts the same history and injects nothing new. *)

  val recover : t -> unit
  (** Strict recovery: {!recover_report}, then insist nothing was lost.
      @raise Onll_core.Onll.Recovery_corrupt on gaps, disagreements or
      decode failures. *)

  val recover_unhardened : t -> unit
  (** The deliberately broken calibration baseline: unhardened per-shard
      and coordinator-log recovery, {b no} oracle, {b no} sweep — so
      committed-but-unapplied transactions silently vanish. The E19 chaos
      campaign must catch it; never use it otherwise. *)

  val scrub : t -> Onll_plog.Plog.scrub_report
  (** One cooperative scrub step over every shard log {e and} every
      coordinator log; reports sum. *)

  val degraded : t -> bool
  (** OR of the shards' sticky degraded flags and the coordinator logs'
      (quarantined commit-record spans). *)

  val was_linearized : t -> S.update_op -> Onll_core.Onll.op_id -> bool
  (** Per-shard detectability, routed — for sub-operation ids (from
      {!recovered_ops}) and plain updates alike. *)

  val recovered_ops : t -> (int * Onll_core.Onll.op_id * int) list
  (** Recovery's re-inserted operations as [(shard, id, exec_idx)] —
      including swept transaction sub-operations. *)

  (** {1 Reclamation and introspection} *)

  val checkpoint : t -> int
  (** Checkpoint every shard; returns the summed summarised indices. *)

  val compact : t -> unit
  (** Checkpoint and prune every shard, then advance each coordinator
      log's head past the prefix of commit records whose every
      sub-operation is covered by a shard checkpoint — the transactional
      analogue of {!Onll_sharded.SHARDED.compact}, bounding coordinator
      space by the live (un-checkpointed) transaction window. *)

  val coordinator_entries : t -> int
  (** Total commit records currently live across the coordinator logs
      (the fast-path regression test pins this at zero). *)

  val snapshot : t -> Onll_core.Onll.Snapshot.t
  (** The sharded snapshot with the coordinator logs appended
      ([ops_per_entry] = sub-operations per commit record). *)
end
