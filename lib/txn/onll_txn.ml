(** Cross-shard atomic transactions (E19); see onll_txn.mli. *)

module Onll = Onll_core.Onll
module Metrics = Onll_obs.Metrics
module Report = Onll.Recovery_report

type txn_id = { txn_proc : int; txn_seq : int }

let pp_txn_id ppf { txn_proc; txn_seq } =
  Format.fprintf ppf "t%d#%d" txn_proc txn_seq

module Make (M : Onll_machine.Machine_sig.S) (S : Onll_core.Spec.S) = struct
  (* The per-shard construction at its full TXN_CAPABLE surface: the
     [with module Shard = C] equality below is what lets this layer call
     the staging/oracle extensions on [Sh.shard t i]. *)
  module C = Onll.Make (M) (S)
  module Sh = Onll_sharded.Make_over (M) (S) (C)
  module L = Onll_plog.Plog.Make (M)
  module A = Onll_core.Attribution.Make (M)

  (* {2 The commit record}

     One CRC-framed entry in the coordinator's log: the transaction id
     plus every sub-operation with its shard, per-shard identity and the
     execution index it was staged at. The staged payload carried by
     in-trace envelopes is the same encoding with indices -1 (unknown at
     staging time); recovery never needs indices from helper-carried
     payloads — helper-committed sub-operations are log-resident. *)

  type sub = {
    c_shard : int;
    c_proc : int;
    c_seq : int;
    c_idx : int;
    c_op : S.update_op;
  }

  type commit = { cm_proc : int; cm_seq : int; cm_subs : sub list }

  let sub_codec =
    let open Onll_util.Codec in
    map
      (fun ((c_shard, c_proc, c_seq), (c_idx, c_op)) ->
        { c_shard; c_proc; c_seq; c_idx; c_op })
      (fun { c_shard; c_proc; c_seq; c_idx; c_op } ->
        ((c_shard, c_proc, c_seq), (c_idx, c_op)))
      (pair (triple int int int) (pair int S.update_codec))

  let commit_codec =
    let open Onll_util.Codec in
    map
      (fun ((cm_proc, cm_seq), cm_subs) -> { cm_proc; cm_seq; cm_subs })
      (fun { cm_proc; cm_seq; cm_subs } -> ((cm_proc, cm_seq), cm_subs))
      (pair (pair int int) (list sub_codec))

  type t = {
    sh : Sh.t;
    n : int;
    coord : L.t array;  (** per process; the transaction durability point *)
    txn_seqs : int array;  (** next per-process txn sequence; owner-only *)
    committed : (txn_id, sub list) Hashtbl.t;
        (** txn id -> sub-operations; live submissions plus whatever the
            last recovery rebuilt — the {!txn_was_committed} answer *)
    applied : (txn_id, (int * int) list) Hashtbl.t;
        (** txn id -> (shard, execution index) per sub (-1 = covered by a
            checkpoint); what coordinator truncation checks against *)
    mutable c_degraded : bool;
        (** sticky: a coordinator log quarantined commit records *)
    ostats : Onll_obs.Opstats.t;
    c_fast : Metrics.counter;
    c_committed : Metrics.counter;
    c_swept : Metrics.counter;
  }

  let instances = ref 0

  let make ~shards cfg =
    let sink = cfg.Onll.Config.sink in
    let n = !instances in
    incr instances;
    let reg =
      if Onll_obs.Sink.active sink then Onll_obs.Sink.registry sink
      else Metrics.create ()
    in
    {
      sh = Sh.make ~shards cfg;
      n = shards;
      coord =
        Array.init M.max_processes (fun p ->
            L.create ~sink ~replicas:cfg.Onll.Config.replicas
              ~name:
                (Printf.sprintf "%s%s.%d.txncoord.%d" S.name
                   cfg.Onll.Config.region_suffix n p)
              ~capacity:cfg.Onll.Config.log_capacity ());
      txn_seqs = Array.make M.max_processes 0;
      committed = Hashtbl.create 32;
      applied = Hashtbl.create 32;
      c_degraded = false;
      ostats = Onll_obs.Opstats.make sink;
      c_fast = Metrics.counter reg "txn.fast_path";
      c_committed = Metrics.counter reg "txn.committed";
      c_swept = Metrics.counter reg "txn.sweep.injected";
    }

  let create ?(shards = 4) ?log_capacity ?replicas () =
    let d = Onll.Config.default in
    make ~shards
      {
        d with
        Onll.Config.log_capacity =
          Option.value log_capacity ~default:d.Onll.Config.log_capacity;
        replicas = Option.value replicas ~default:d.Onll.Config.replicas;
      }

  let shards t = t.n
  let sink t = Sh.sink t.sh
  let sharded t = t.sh
  let participants t ops = Sh.participants t.sh ops
  let update t op = Sh.update t.sh op
  let read t op = Sh.read t.sh op
  let was_linearized t op id = Sh.was_linearized t.sh op id
  let recovered_ops t = Sh.recovered_ops t.sh
  let checkpoint t = Sh.checkpoint t.sh
  let txn_was_committed t id = Hashtbl.mem t.committed id

  let committed_txns t =
    Hashtbl.fold (fun id _ acc -> id :: acc) t.committed []
    |> List.sort compare

  let coordinator_entries t =
    Array.fold_left (fun acc l -> acc + L.entry_count l) 0 t.coord

  (* {2 Reclamation} *)

  let decode_commits_tolerant log failures =
    List.filter_map
      (fun e ->
        match Onll_util.Codec.decode commit_codec e with
        | c -> Some c
        | exception _ ->
            incr failures;
            None)
      (L.entries log)

  (* Checkpoint + prune every shard, then drop the prefix of each
     coordinator log whose commit records are fully covered: every
     sub-operation either checkpoint-summarised (-1) or at an index at or
     below its shard's fresh checkpoint. Commit records the applied table
     does not vouch for — another process's in-flight transaction — stop
     the prefix. *)
  let compact t =
    let uptos =
      Array.init t.n (fun i ->
          let shard = Sh.shard t.sh i in
          let upto = C.checkpoint shard in
          (if upto > 0 then
             try C.prune shard ~below:upto with Invalid_argument _ -> ());
          upto)
    in
    Array.iter
      (fun log ->
        let covered cm =
          match
            Hashtbl.find_opt t.applied
              { txn_proc = cm.cm_proc; txn_seq = cm.cm_seq }
          with
          | None -> false
          | Some placed ->
              List.for_all
                (fun (shard, idx) -> idx = -1 || idx <= uptos.(shard))
                placed
        in
        let rec count acc = function
          | [] -> acc
          | e :: rest -> (
              match Onll_util.Codec.decode commit_codec e with
              | cm when covered cm -> count (acc + 1) rest
              | _ -> acc
              | exception _ -> acc)
        in
        let droppable = count 0 (L.entries log) in
        if droppable > 0 then begin
          L.set_head log droppable;
          (* set_head only advances the head pointer; relocating physically
             reclaims the dead pre-head bytes so appends can reuse them. *)
          L.relocate log
        end)
      t.coord

  (* {2 The commit path} *)

  let append_coord t p payload =
    match L.try_append t.coord.(p) payload with
    | Ok () -> ()
    | Error `Full -> (
        compact t;
        match L.try_append t.coord.(p) payload with
        | Ok () -> ()
        | Error `Full -> raise (Onll.Log_full (L.name t.coord.(p))))

  let txn_commit t ~id ops =
    A.attributed t.ostats Onll_obs.Opstats.txn_done (fun () ->
        let p = id.txn_proc in
        (* Fix every sub-operation's per-shard identity up front, so the
           staged payload embeds the complete transaction. *)
        let subs =
          List.map
            (fun op ->
              let s = Sh.shard_of_update t.sh op in
              let seq = C.reserve_seq (Sh.shard t.sh s) in
              {
                c_shard = s;
                c_proc = p;
                c_seq = seq;
                c_idx = -1;
                c_op = op;
              })
            ops
        in
        (* Stage (order): insert each sub-operation, unavailable, tagged
           with the payload — from here on, any helper that persists one
           of these nodes durably commits the whole transaction. *)
        let payload0 =
          Onll_util.Codec.encode commit_codec
            { cm_proc = p; cm_seq = id.txn_seq; cm_subs = subs }
        in
        let staged =
          List.map
            (fun sub ->
              let shard = Sh.shard t.sh sub.c_shard in
              let st =
                C.stage_txn shard ~seq:sub.c_seq ~payload:payload0 sub.c_op
              in
              ({ sub with c_idx = C.staged_idx st }, st))
            subs
        in
        (* Commit: ONE fenced append in the coordinator's own region —
           the transaction's durability point. *)
        let subs = List.map fst staged in
        append_coord t p
          (Onll_util.Codec.encode commit_codec
             { cm_proc = p; cm_seq = id.txn_seq; cm_subs = subs });
        Hashtbl.replace t.committed id subs;
        Hashtbl.replace t.applied id
          (List.map (fun sub -> (sub.c_shard, sub.c_idx)) subs);
        Metrics.incr t.c_committed;
        (* Finish (linearize): availability flips and value computation
           only — no further fences. *)
        let values =
          List.map
            (fun (sub, st) -> C.finish_txn (Sh.shard t.sh sub.c_shard) st)
            staged
        in
        let sink = Sh.sink t.sh in
        if Onll_obs.Sink.active sink then
          Onll_obs.Sink.emit sink ~proc:p
            (Onll_obs.Event.Txn
               {
                 shards = List.length (participants t ops);
                 ops = List.length ops;
               });
        M.return_point ();
        values)

  let txn t ops =
    match ops with
    | [] -> []
    | [ op ] ->
        (* Single-shard fast path: a plain sharded update is already
           atomic and already one fence — no coordinator record. *)
        Metrics.incr t.c_fast;
        [ Sh.update t.sh op ]
    | ops ->
        let p = M.self () in
        let seq = t.txn_seqs.(p) in
        t.txn_seqs.(p) <- seq + 1;
        txn_commit t ~id:{ txn_proc = p; txn_seq = seq } ops

  let txn_detectable t ~seq ops =
    match ops with
    | [] | [ _ ] ->
        invalid_arg "Onll_txn.txn_detectable: needs at least 2 operations"
    | ops ->
        let p = M.self () in
        if seq < t.txn_seqs.(p) then
          invalid_arg "Onll_txn.txn_detectable: sequence number reused";
        t.txn_seqs.(p) <- seq + 1;
        txn_commit t ~id:{ txn_proc = p; txn_seq = seq } ops

  (* {2 Recovery: coordinator sweep before new submissions} *)

  let recover_report t =
    Hashtbl.reset t.committed;
    Hashtbl.reset t.applied;
    Array.fill t.txn_seqs 0 M.max_processes 0;
    let failures = ref 0 in
    (* 1. Coordinator logs: salvage, then the committed set C1 — in
       deterministic (process, log) order, which fixes the sweep order. *)
    let coord_salvage =
      Array.to_list t.coord |> List.map (fun l -> (L.name l, L.recover l))
    in
    if
      List.exists
        (fun (_, s) -> s.Onll_plog.Plog.quarantined_spans > 0)
        coord_salvage
    then t.c_degraded <- true;
    let c1 =
      Array.to_list t.coord
      |> List.concat_map (fun l -> decode_commits_tolerant l failures)
    in
    (* 2. Per-shard recovery with C1's staged indices as the oracle. *)
    let extras = Array.make t.n [] in
    List.iter
      (fun cm ->
        List.iter
          (fun sub ->
            if sub.c_idx >= 0 then
              extras.(sub.c_shard) <-
                ( sub.c_idx,
                  { Onll.id_proc = sub.c_proc; id_seq = sub.c_seq },
                  sub.c_op )
                :: extras.(sub.c_shard))
          cm.cm_subs)
      c1;
    let shard_results =
      Array.init t.n (fun i ->
          C.recover_txn (Sh.shard t.sh i) ~extra:(List.rev extras.(i)))
    in
    (* 3. Helper-committed transactions: payloads found riding in shard
       logs (C2), deduplicated against C1 and each other. *)
    let seen = Hashtbl.create 16 in
    List.iter (fun cm -> Hashtbl.replace seen (cm.cm_proc, cm.cm_seq) ()) c1;
    let c2 =
      Array.to_list shard_results
      |> List.concat_map snd
      |> List.filter_map (fun payload ->
             match Onll_util.Codec.decode commit_codec payload with
             | cm ->
                 if Hashtbl.mem seen (cm.cm_proc, cm.cm_seq) then None
                 else begin
                   Hashtbl.replace seen (cm.cm_proc, cm.cm_seq) ();
                   Some cm
                 end
             | exception _ ->
                 incr failures;
                 None)
      |> List.sort (fun a b ->
             compare (a.cm_proc, a.cm_seq) (b.cm_proc, b.cm_seq))
    in
    let all = c1 @ c2 in
    (* 4. Committed table + transaction sequence allocation. *)
    List.iter
      (fun cm ->
        Hashtbl.replace t.committed
          { txn_proc = cm.cm_proc; txn_seq = cm.cm_seq }
          cm.cm_subs;
        if cm.cm_seq >= t.txn_seqs.(cm.cm_proc) then
          t.txn_seqs.(cm.cm_proc) <- cm.cm_seq + 1)
      all;
    (* 5. The sweep: every committed sub-operation the rebuilt traces do
       not contain is re-applied exactly-once (identity-keyed) and made
       durable in this process's shard log, one fenced run per shard. *)
    let missing = Array.make t.n [] in
    List.iter
      (fun cm ->
        List.iter
          (fun sub ->
            let shard = Sh.shard t.sh sub.c_shard in
            let id = { Onll.id_proc = sub.c_proc; id_seq = sub.c_seq } in
            if not (C.was_linearized shard id) then
              missing.(sub.c_shard) <- (id, sub.c_op) :: missing.(sub.c_shard))
          cm.cm_subs)
      all;
    let injected = ref 0 in
    Array.iteri
      (fun i subs ->
        match List.rev subs with
        | [] -> ()
        | subs ->
            let idxs = C.inject_txn_run (Sh.shard t.sh i) subs in
            injected := !injected + List.length idxs;
            Metrics.add t.c_swept (List.length idxs))
      missing;
    (* 6. Applied indices, for coordinator truncation. A committed sub
       recovery knows of but cannot locate in a recovered table sits
       below a checkpoint floor: covered (-1). *)
    let maps =
      Array.init t.n (fun i ->
          let m = Hashtbl.create 32 in
          List.iter
            (fun (id, idx) -> Hashtbl.replace m id idx)
            (C.recovered_ops (Sh.shard t.sh i));
          m)
    in
    Hashtbl.iter
      (fun id subs ->
        Hashtbl.replace t.applied id
          (List.map
             (fun sub ->
               let sid = { Onll.id_proc = sub.c_proc; id_seq = sub.c_seq } in
               ( sub.c_shard,
                 Option.value ~default:(-1)
                   (Hashtbl.find_opt maps.(sub.c_shard) sid) ))
             subs))
      t.committed;
    (* 7. Composed report: shards as Onll_sharded composes them, the
       coordinator logs' salvage prepended, swept re-applies counted as
       recovered operations. *)
    let rs = Array.to_list (Array.map fst shard_results) in
    {
      Report.recovered_ops =
        List.fold_left (fun a r -> a + r.Report.recovered_ops) 0 rs
        + !injected;
      base_idx = List.fold_left (fun a r -> a + r.Report.base_idx) 0 rs;
      gap_indices = List.concat_map (fun r -> r.Report.gap_indices) rs;
      dropped = List.concat_map (fun r -> r.Report.dropped) rs;
      disagreements = List.concat_map (fun r -> r.Report.disagreements) rs;
      decode_failures =
        List.fold_left (fun a r -> a + r.Report.decode_failures) 0 rs
        + !failures;
      salvage =
        coord_salvage @ List.concat_map (fun r -> r.Report.salvage) rs;
      lost_acked = List.concat_map (fun r -> r.Report.lost_acked) rs;
    }

  let recover t =
    let r = recover_report t in
    match (r.Report.disagreements, r.Report.gap_indices) with
    | d :: _, _ ->
        raise
          (Onll.Recovery_corrupt
             (Printf.sprintf "logs disagree on operation at index %d" d))
    | [], g :: _ ->
        raise
          (Onll.Recovery_corrupt
             (Printf.sprintf "operation at index %d missing from all logs" g))
    | [], [] ->
        if r.Report.decode_failures > 0 then
          raise (Onll.Recovery_corrupt "undecodable log entry")

  let recover_unhardened t =
    Hashtbl.reset t.committed;
    Hashtbl.reset t.applied;
    Sh.recover_unhardened t.sh;
    Array.iter L.recover_unhardened t.coord

  let scrub t =
    let r = Sh.scrub t.sh in
    let r =
      Array.fold_left
        (fun acc l -> Onll_plog.Plog.add_scrub acc (L.scrub l))
        r t.coord
    in
    if r.Onll_plog.Plog.unrepairable_spans > 0 then t.c_degraded <- true;
    r

  let degraded t = Sh.degraded t.sh || t.c_degraded

  let snapshot t =
    let s = Sh.snapshot t.sh in
    let coord_logs =
      Array.to_list t.coord
      |> List.map (fun l ->
             let ops_per_entry =
               List.map
                 (fun e ->
                   match Onll_util.Codec.decode commit_codec e with
                   | cm -> List.length cm.cm_subs
                   | exception _ -> 0)
                 (L.entries l)
             in
             {
               Onll.Snapshot.log_name = L.name l;
               live_bytes = L.live_bytes l;
               used_bytes = L.used_bytes l;
               entry_count = List.length ops_per_entry;
               ops_per_entry;
             })
    in
    {
      s with
      Onll.Snapshot.logs = s.Onll.Snapshot.logs @ coord_logs;
      degraded = s.Onll.Snapshot.degraded || t.c_degraded;
    }
end
