(** A LIFO stack of integers. *)

type state = int list
type update_op = Push of int | Pop
type read_op = Top | Depth
type value = Nothing | Taken of int option | Count of int

let name = "stack"
let initial = []

let apply st = function
  | Push v -> (v :: st, Nothing)
  | Pop -> (
      match st with
      | [] -> ([], Taken None)
      | x :: rest -> (rest, Taken (Some x)))

let read st = function
  | Top -> ( match st with [] -> Taken None | x :: _ -> Taken (Some x))
  | Depth -> Count (List.length st)

let update_codec =
  let open Onll_util.Codec in
  tagged
    (function
      | Push v -> (0, encode int v)
      | Pop -> (1, ""))
    (fun tag body ->
      match tag with
      | 0 -> Push (decode int body)
      | 1 -> Pop
      | n -> raise (Decode_error (Printf.sprintf "stack op: bad tag %d" n)))

let state_codec = Onll_util.Codec.(list int)
let equal_state (a : state) b = a = b
let equal_value (a : value) b = a = b

let pp_update ppf = function
  | Push v -> Format.fprintf ppf "push(%d)" v
  | Pop -> Format.pp_print_string ppf "pop"

let pp_read ppf = function
  | Top -> Format.pp_print_string ppf "top"
  | Depth -> Format.pp_print_string ppf "depth"

let pp_value ppf = function
  | Nothing -> Format.pp_print_string ppf "()"
  | Taken None -> Format.pp_print_string ppf "empty"
  | Taken (Some v) -> Format.fprintf ppf "some(%d)" v
  | Count n -> Format.fprintf ppf "depth=%d" n

(* No natural partition key — LIFO order is global: every pop depends on every push.
   Single-shard fallback: the sharded construction degenerates to one
   active shard, which is always correct (E14). *)
let shard_of_update ~shards:_ _ = 0
let shard_of_read ~shards:_ _ = Some 0
let merge_read _ = function v :: _ -> v | [] -> invalid_arg "merge_read"
