(** A double-ended queue of integers. *)

type state = int list  (* front first *)
type update_op = Push_front of int | Push_back of int | Pop_front | Pop_back
type read_op = Front | Back | Length
type value = Nothing | Got of int option | Count of int

let name = "deque"
let initial = []

let apply st = function
  | Push_front x -> (x :: st, Nothing)
  | Push_back x -> (st @ [ x ], Nothing)
  | Pop_front -> (
      match st with
      | [] -> ([], Got None)
      | x :: rest -> (rest, Got (Some x)))
  | Pop_back -> (
      match List.rev st with
      | [] -> ([], Got None)
      | x :: rest_rev -> (List.rev rest_rev, Got (Some x)))

let read st = function
  | Front -> Got (match st with [] -> None | x :: _ -> Some x)
  | Back -> Got (match List.rev st with [] -> None | x :: _ -> Some x)
  | Length -> Count (List.length st)

let update_codec =
  let open Onll_util.Codec in
  tagged
    (function
      | Push_front x -> (0, encode int x)
      | Push_back x -> (1, encode int x)
      | Pop_front -> (2, "")
      | Pop_back -> (3, ""))
    (fun tag body ->
      match tag with
      | 0 -> Push_front (decode int body)
      | 1 -> Push_back (decode int body)
      | 2 -> Pop_front
      | 3 -> Pop_back
      | n -> raise (Decode_error (Printf.sprintf "deque op: bad tag %d" n)))

let state_codec = Onll_util.Codec.(list int)
let equal_state (a : state) b = a = b
let equal_value (a : value) b = a = b

let pp_update ppf = function
  | Push_front x -> Format.fprintf ppf "push-front(%d)" x
  | Push_back x -> Format.fprintf ppf "push-back(%d)" x
  | Pop_front -> Format.pp_print_string ppf "pop-front"
  | Pop_back -> Format.pp_print_string ppf "pop-back"

let pp_read ppf = function
  | Front -> Format.pp_print_string ppf "front"
  | Back -> Format.pp_print_string ppf "back"
  | Length -> Format.pp_print_string ppf "length"

let pp_value ppf = function
  | Nothing -> Format.pp_print_string ppf "()"
  | Got None -> Format.pp_print_string ppf "empty"
  | Got (Some x) -> Format.fprintf ppf "got(%d)" x
  | Count n -> Format.fprintf ppf "len=%d" n

(* No natural partition key — both ends observe the same global sequence.
   Single-shard fallback: the sharded construction degenerates to one
   active shard, which is always correct (E14). *)
let shard_of_update ~shards:_ _ = 0
let shard_of_read ~shards:_ _ = Some 0
let merge_read _ = function v :: _ -> v | [] -> invalid_arg "merge_read"
