(** A bank ledger: named accounts with crash-consistent transfers. The
    motivating shape for durable linearizability — once a transfer has
    responded (money reported moved), no crash may un-move it, and no crash
    may ever duplicate or lose money mid-transfer. *)

module Smap = Map.Make (String)

type state = int Smap.t
type update_op =
  | Open of string  (** create an account with balance 0 *)
  | Deposit of string * int
  | Withdraw of string * int
  | Transfer of string * string * int

type read_op = Balance of string | Total | Accounts
type value =
  | Ok_v
  | Rejected of string
  | Amount of int option
  | Names of string list

let name = "ledger"
let initial = Smap.empty

let apply st = function
  | Open a ->
      if Smap.mem a st then (st, Rejected "exists")
      else (Smap.add a 0 st, Ok_v)
  | Deposit (a, amt) -> (
      if amt <= 0 then (st, Rejected "non-positive amount")
      else
        match Smap.find_opt a st with
        | None -> (st, Rejected "no such account")
        | Some bal -> (Smap.add a (bal + amt) st, Ok_v))
  | Withdraw (a, amt) -> (
      if amt <= 0 then (st, Rejected "non-positive amount")
      else
        match Smap.find_opt a st with
        | None -> (st, Rejected "no such account")
        | Some bal ->
            if bal < amt then (st, Rejected "insufficient funds")
            else (Smap.add a (bal - amt) st, Ok_v))
  | Transfer (a, b, amt) -> (
      if amt <= 0 then (st, Rejected "non-positive amount")
      else if a = b then (st, Rejected "same account")
      else
        match (Smap.find_opt a st, Smap.find_opt b st) with
        | None, _ | _, None -> (st, Rejected "no such account")
        | Some ba, Some bb ->
            if ba < amt then (st, Rejected "insufficient funds")
            else
              (Smap.add a (ba - amt) (Smap.add b (bb + amt) st), Ok_v))

let read st = function
  | Balance a -> Amount (Smap.find_opt a st)
  | Total -> Amount (Some (Smap.fold (fun _ v acc -> acc + v) st 0))
  | Accounts -> Names (List.map fst (Smap.bindings st))

let update_codec =
  let open Onll_util.Codec in
  tagged
    (function
      | Open a -> (0, encode string a)
      | Deposit (a, amt) -> (1, encode (pair string int) (a, amt))
      | Withdraw (a, amt) -> (2, encode (pair string int) (a, amt))
      | Transfer (a, b, amt) ->
          (3, encode (triple string string int) (a, b, amt)))
    (fun tag body ->
      match tag with
      | 0 -> Open (decode string body)
      | 1 ->
          let a, amt = decode (pair string int) body in
          Deposit (a, amt)
      | 2 ->
          let a, amt = decode (pair string int) body in
          Withdraw (a, amt)
      | 3 ->
          let a, b, amt = decode (triple string string int) body in
          Transfer (a, b, amt)
      | n -> raise (Decode_error (Printf.sprintf "ledger op: bad tag %d" n)))

let state_codec =
  let open Onll_util.Codec in
  map
    (fun bindings -> Smap.of_seq (List.to_seq bindings))
    Smap.bindings
    (list (pair string int))

let equal_state = Smap.equal Int.equal
let equal_value (a : value) b = a = b

let pp_update ppf = function
  | Open a -> Format.fprintf ppf "open(%s)" a
  | Deposit (a, amt) -> Format.fprintf ppf "deposit(%s,%d)" a amt
  | Withdraw (a, amt) -> Format.fprintf ppf "withdraw(%s,%d)" a amt
  | Transfer (a, b, amt) -> Format.fprintf ppf "transfer(%s->%s,%d)" a b amt

let pp_read ppf = function
  | Balance a -> Format.fprintf ppf "balance(%s)" a
  | Total -> Format.pp_print_string ppf "total"
  | Accounts -> Format.pp_print_string ppf "accounts"

let pp_value ppf = function
  | Ok_v -> Format.pp_print_string ppf "ok"
  | Rejected r -> Format.fprintf ppf "rejected(%s)" r
  | Amount None -> Format.pp_print_string ppf "no-account"
  | Amount (Some n) -> Format.fprintf ppf "%d" n
  | Names l -> Format.fprintf ppf "[%s]" (String.concat ";" l)

(* No natural partition key — transfers atomically touch two accounts, so no per-account split is sound.
   Single-shard fallback: the sharded construction degenerates to one
   active shard, which is always correct (E14). *)
let shard_of_update ~shards:_ _ = 0
let shard_of_read ~shards:_ _ = Some 0
let merge_read _ = function v :: _ -> v | [] -> invalid_arg "merge_read"
