(** An integer set with membership reads. *)

module Iset = Set.Make (Int)

type state = Iset.t
type update_op = Insert of int | Remove of int
type read_op = Contains of int | Cardinal
type value = Changed of bool | Member of bool | Count of int

let name = "set"
let initial = Iset.empty

let apply st = function
  | Insert x ->
      let changed = not (Iset.mem x st) in
      (Iset.add x st, Changed changed)
  | Remove x ->
      let changed = Iset.mem x st in
      (Iset.remove x st, Changed changed)

let read st = function
  | Contains x -> Member (Iset.mem x st)
  | Cardinal -> Count (Iset.cardinal st)

(* Partitioning (E14): element-keyed — [Insert]/[Remove]/[Contains] route
   to the element's shard; [Cardinal] is a global read summing disjoint
   per-shard cardinalities. *)
let shard_of_update ~shards = function
  | Insert x | Remove x -> Onll_core.Spec.int_shard ~shards x

let shard_of_read ~shards = function
  | Contains x -> Some (Onll_core.Spec.int_shard ~shards x)
  | Cardinal -> None

let merge_read _ values =
  Count
    (List.fold_left
       (fun acc -> function
         | Count n -> acc + n
         | Changed _ | Member _ -> assert false)
       0 values)

let update_codec =
  let open Onll_util.Codec in
  tagged
    (function
      | Insert x -> (0, encode int x)
      | Remove x -> (1, encode int x))
    (fun tag body ->
      match tag with
      | 0 -> Insert (decode int body)
      | 1 -> Remove (decode int body)
      | n -> raise (Decode_error (Printf.sprintf "set op: bad tag %d" n)))

let state_codec =
  let open Onll_util.Codec in
  map (fun l -> Iset.of_list l) Iset.elements (list int)

let equal_state = Iset.equal
let equal_value (a : value) b = a = b

let pp_update ppf = function
  | Insert x -> Format.fprintf ppf "insert(%d)" x
  | Remove x -> Format.fprintf ppf "remove(%d)" x

let pp_read ppf = function
  | Contains x -> Format.fprintf ppf "contains(%d)" x
  | Cardinal -> Format.pp_print_string ppf "cardinal"

let pp_value ppf = function
  | Changed b -> Format.fprintf ppf "changed=%b" b
  | Member b -> Format.fprintf ppf "member=%b" b
  | Count n -> Format.fprintf ppf "count=%d" n
