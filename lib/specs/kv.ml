(** A string key-value store — the shape of the indexing structures most
    NVM data-structure work targets (§7). [Put]/[Delete] return the previous
    binding, so clients can detect replays. *)

module Smap = Map.Make (String)

type state = string Smap.t
type update_op = Put of string * string | Delete of string
type read_op = Get of string | Size
type value = Previous of string option | Found of string option | Count of int

let name = "kv"
let initial = Smap.empty

let apply st = function
  | Put (k, v) -> (Smap.add k v st, Previous (Smap.find_opt k st))
  | Delete k -> (Smap.remove k st, Previous (Smap.find_opt k st))

let read st = function
  | Get k -> Found (Smap.find_opt k st)
  | Size -> Count (Smap.cardinal st)

(* Partitioning (E14): every operation on key [k] — updates and [Get]s —
   routes to [k]'s shard, so disjoint-key workloads touch disjoint shards.
   [Size] is a global read: each shard counts its own keys and the counts
   sum (shards hold disjoint key sets by construction of the router). *)
let shard_of_update ~shards = function
  | Put (k, _) | Delete k -> Onll_core.Spec.string_shard ~shards k

let shard_of_read ~shards = function
  | Get k -> Some (Onll_core.Spec.string_shard ~shards k)
  | Size -> None

let merge_read _ values =
  Count
    (List.fold_left
       (fun acc -> function
         | Count n -> acc + n
         | Previous _ | Found _ -> assert false)
       0 values)

let update_codec =
  let open Onll_util.Codec in
  tagged
    (function
      | Put (k, v) -> (0, encode (pair string string) (k, v))
      | Delete k -> (1, encode string k))
    (fun tag body ->
      match tag with
      | 0 ->
          let k, v = decode (pair string string) body in
          Put (k, v)
      | 1 -> Delete (decode string body)
      | n -> raise (Decode_error (Printf.sprintf "kv op: bad tag %d" n)))

let state_codec =
  let open Onll_util.Codec in
  map
    (fun bindings -> Smap.of_seq (List.to_seq bindings))
    Smap.bindings
    (list (pair string string))

let equal_state = Smap.equal String.equal
let equal_value (a : value) b = a = b

let pp_update ppf = function
  | Put (k, v) -> Format.fprintf ppf "put(%s=%s)" k v
  | Delete k -> Format.fprintf ppf "del(%s)" k

let pp_read ppf = function
  | Get k -> Format.fprintf ppf "get(%s)" k
  | Size -> Format.pp_print_string ppf "size"

let pp_value ppf = function
  | Previous None -> Format.pp_print_string ppf "prev=none"
  | Previous (Some v) -> Format.fprintf ppf "prev=%s" v
  | Found None -> Format.pp_print_string ppf "none"
  | Found (Some v) -> Format.fprintf ppf "found=%s" v
  | Count n -> Format.fprintf ppf "count=%d" n
