(** A read-write register over integers. [Write] returns the overwritten
    value, which makes it strongly non-commutative (the shape Attiya et
    al.'s lower bound, discussed in §7, applies to). *)

type state = int
type update_op = Write of int
type read_op = Read
type value = int

let name = "register"
let initial = 0
let apply st (Write v) = (v, st)
let read st Read = st

let update_codec =
  Onll_util.Codec.map (fun v -> Write v) (fun (Write v) -> v) Onll_util.Codec.int

let state_codec = Onll_util.Codec.int
let equal_state = Int.equal
let equal_value = Int.equal
let pp_update ppf (Write v) = Format.fprintf ppf "write(%d)" v
let pp_read ppf Read = Format.pp_print_string ppf "read"
let pp_value = Format.pp_print_int

(* No natural partition key — a register is one cell of global state.
   Single-shard fallback: the sharded construction degenerates to one
   active shard, which is always correct (E14). *)
let shard_of_update ~shards:_ _ = 0
let shard_of_read ~shards:_ _ = Some 0
let merge_read _ = function v :: _ -> v | [] -> invalid_arg "merge_read"
