(** A FIFO queue of integers (the object class Friedman et al. [15] build
    directly; here it falls out of the universal construction). [Dequeue]
    is an update (it changes the state) returning [None] on empty. *)

type state = int list * int list  (* front, reversed back *)
type update_op = Enqueue of int | Dequeue
type read_op = Peek | Length
type value = Nothing | Taken of int option | Len of int

let name = "queue"
let initial = ([], [])

let normalize = function
  | [], back -> (List.rev back, [])
  | q -> q

let apply st = function
  | Enqueue v ->
      let front, back = st in
      (normalize (front, v :: back), Nothing)
  | Dequeue -> (
      match normalize st with
      | [], _ -> (st, Taken None)
      | x :: front, back -> (normalize (front, back), Taken (Some x)))

let read st = function
  | Peek -> (
      match normalize st with
      | [], _ -> Taken None
      | x :: _, _ -> Taken (Some x))
  | Length ->
      let front, back = st in
      Len (List.length front + List.length back)

let to_list (front, back) = front @ List.rev back

let update_codec =
  let open Onll_util.Codec in
  tagged
    (function
      | Enqueue v -> (0, encode int v)
      | Dequeue -> (1, ""))
    (fun tag body ->
      match tag with
      | 0 -> Enqueue (decode int body)
      | 1 -> Dequeue
      | n -> raise (Decode_error (Printf.sprintf "queue op: bad tag %d" n)))

let state_codec =
  let open Onll_util.Codec in
  (* Canonical form so that equal queues encode equally. *)
  map (fun l -> (l, [])) to_list (list int)

let equal_state a b = to_list a = to_list b
let equal_value (a : value) b = a = b

let pp_update ppf = function
  | Enqueue v -> Format.fprintf ppf "enq(%d)" v
  | Dequeue -> Format.pp_print_string ppf "deq"

let pp_read ppf = function
  | Peek -> Format.pp_print_string ppf "peek"
  | Length -> Format.pp_print_string ppf "len"

let pp_value ppf = function
  | Nothing -> Format.pp_print_string ppf "()"
  | Taken None -> Format.pp_print_string ppf "empty"
  | Taken (Some v) -> Format.fprintf ppf "some(%d)" v
  | Len n -> Format.fprintf ppf "len=%d" n

(* No natural partition key — FIFO order is global: every dequeue depends on every enqueue.
   Single-shard fallback: the sharded construction degenerates to one
   active shard, which is always correct (E14). *)
let shard_of_update ~shards:_ _ = 0
let shard_of_read ~shards:_ _ = Some 0
let merge_read _ = function v :: _ -> v | [] -> invalid_arg "merge_read"
