(** A min-priority queue of (priority, payload) pairs. [Extract_min] is an
    update returning the smallest-priority element; ties break by insertion
    order (determinism matters: the spec must be a function of the update
    sequence). *)

type elt = { prio : int; payload : int; stamp : int }
(** [stamp] is the insertion number, the deterministic tie-breaker. *)

type state = { heap : elt list; next_stamp : int }
(* Sorted by (prio, stamp); small states, so a sorted list is the clearest
   correct implementation. *)

type update_op = Insert of int * int  (** priority, payload *)
  | Extract_min

type read_op = Find_min | Size
type value = Nothing | Min of (int * int) option | Count of int

let name = "pqueue"
let initial = { heap = []; next_stamp = 0 }

let elt_le a b =
  a.prio < b.prio || (a.prio = b.prio && a.stamp <= b.stamp)

let rec insert_sorted e = function
  | [] -> [ e ]
  | x :: rest as l -> if elt_le e x then e :: l else x :: insert_sorted e rest

let apply st = function
  | Insert (prio, payload) ->
      let e = { prio; payload; stamp = st.next_stamp } in
      ( { heap = insert_sorted e st.heap; next_stamp = st.next_stamp + 1 },
        Nothing )
  | Extract_min -> (
      match st.heap with
      | [] -> (st, Min None)
      | e :: rest -> ({ st with heap = rest }, Min (Some (e.prio, e.payload))))

let read st = function
  | Find_min -> (
      match st.heap with
      | [] -> Min None
      | e :: _ -> Min (Some (e.prio, e.payload)))
  | Size -> Count (List.length st.heap)

let update_codec =
  let open Onll_util.Codec in
  tagged
    (function
      | Insert (p, x) -> (0, encode (pair int int) (p, x))
      | Extract_min -> (1, ""))
    (fun tag body ->
      match tag with
      | 0 ->
          let p, x = decode (pair int int) body in
          Insert (p, x)
      | 1 -> Extract_min
      | n -> raise (Decode_error (Printf.sprintf "pqueue op: bad tag %d" n)))

let state_codec =
  let open Onll_util.Codec in
  let elt_c =
    map
      (fun (prio, payload, stamp) -> { prio; payload; stamp })
      (fun { prio; payload; stamp } -> (prio, payload, stamp))
      (triple int int int)
  in
  map
    (fun (heap, next_stamp) -> { heap; next_stamp })
    (fun { heap; next_stamp } -> (heap, next_stamp))
    (pair (list elt_c) int)

let equal_state (a : state) b = a = b
let equal_value (a : value) b = a = b

let pp_update ppf = function
  | Insert (p, x) -> Format.fprintf ppf "insert(%d,%d)" p x
  | Extract_min -> Format.pp_print_string ppf "extract-min"

let pp_read ppf = function
  | Find_min -> Format.pp_print_string ppf "find-min"
  | Size -> Format.pp_print_string ppf "size"

let pp_value ppf = function
  | Nothing -> Format.pp_print_string ppf "()"
  | Min None -> Format.pp_print_string ppf "empty"
  | Min (Some (p, x)) -> Format.fprintf ppf "min(%d,%d)" p x
  | Count n -> Format.fprintf ppf "size=%d" n

(* No natural partition key — the minimum is a global property of the whole heap.
   Single-shard fallback: the sharded construction degenerates to one
   active shard, which is always correct (E14). *)
let shard_of_update ~shards:_ _ = 0
let shard_of_read ~shards:_ _ = Some 0
let merge_read _ = function v :: _ -> v | [] -> invalid_arg "merge_read"
