(** The paper's running example (§3.3): a shared counter. [Increment]
    returns the new value; [Add] generalises it; [Get] is the read. *)

type state = int
type update_op = Increment | Add of int
type read_op = Get
type value = int

let name = "counter"
let initial = 0

let apply st = function
  | Increment -> (st + 1, st + 1)
  | Add k -> (st + k, st + k)

let read st Get = st

let update_codec =
  let open Onll_util.Codec in
  tagged
    (function
      | Increment -> (0, "")
      | Add k -> (1, encode int k))
    (fun tag body ->
      match tag with
      | 0 -> Increment
      | 1 -> Add (decode int body)
      | n -> raise (Decode_error (Printf.sprintf "counter op: bad tag %d" n)))

let state_codec = Onll_util.Codec.int
let equal_state = Int.equal
let equal_value = Int.equal

let pp_update ppf = function
  | Increment -> Format.pp_print_string ppf "incr"
  | Add k -> Format.fprintf ppf "add(%d)" k

let pp_read ppf Get = Format.pp_print_string ppf "get"
let pp_value = Format.pp_print_int

(* No natural partition key — a counter is one cell of global state.
   Single-shard fallback: the sharded construction degenerates to one
   active shard, which is always correct (E14). *)
let shard_of_update ~shards:_ _ = 0
let shard_of_read ~shards:_ _ = Some 0
let merge_read _ = function v :: _ -> v | [] -> invalid_arg "merge_read"
